// Fixture: raw random engines/devices must be flagged — common::Rng is the
// only randomness source outside src/common/random.*.
#include <cstdlib>
#include <random>

int bad_rand() { return std::rand(); }

int bad_engine() {
  std::mt19937 gen(1234);
  return static_cast<int>(gen());
}

unsigned bad_device() {
  std::random_device dev;
  return dev();
}
