// Fixture: flow-aware determinism rules.
//
// `drain` iterates an unordered container and transitively reaches a
// scheduling sink (drain -> kick -> schedule), so its loop order imprints
// on the event schedule. `average` never schedules, but accumulates a
// double in hash order, which is order-sensitive on its own. `close_all`
// shows the order-insensitive suppression silencing the iteration rule.
#include <string>
#include <unordered_map>
#include <unordered_set>

struct ReplicaPump {
  std::unordered_map<std::string, int> pending_;
  std::unordered_set<std::string> peers_;
  double mean_cost_ = 0;

  void kick() { schedule(next_deadline()); }

  void drain() {
    for (const auto& [lfn, priority] : pending_) {
      stage(lfn, priority);
    }
    kick();
  }

  double average() {
    for (const auto& peer : peers_) {
      mean_cost_ += cost_of(peer);
    }
    return mean_cost_;
  }

  void close_all() {
    // gdmp-lint: order-insensitive — identical teardown signal for all; no downstream order observer
    for (const auto& [lfn, priority] : pending_) {
      touch(lfn);
    }
    notify_done();
  }
};
