// Fixture: a callback slot on object X capturing X by shared_ptr is an
// ownership cycle; binding through a raw pointer is the sanctioned escape.
#include <functional>
#include <memory>

struct Conn {
  std::function<void()> on_closed;
};

void wire_cycle(std::shared_ptr<Conn> conn) {
  conn->on_closed = [conn] {};  // finding: conn keeps itself alive
}

void wire_raw(std::shared_ptr<Conn> conn) {
  auto* raw = conn.get();
  raw->on_closed = [raw] {};  // clean: raw pointer, no ownership
}
