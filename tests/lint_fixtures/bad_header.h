// Fixture header: deliberately missing #pragma once, and polluting every
// includer's namespace.
#include <string>

using namespace std;

inline string greet() { return "hello"; }
