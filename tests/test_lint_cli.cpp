// gdmp_lint CLI contract: exit codes and output formats, exercised against
// the real binary (path injected by CMake as GDMP_LINT_BINARY).
//
//   exit 0  no findings
//   exit 1  findings reported
//   exit 2  usage error or unreadable input
#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CliResult run_cli(const std::string& args, bool merge_stderr = true) {
  // stderr is unbuffered and would interleave ahead of the binary's
  // buffered stdout, so format-sensitive tests capture stdout alone.
  const std::string command = std::string(GDMP_LINT_BINARY) + " " + args +
                              (merge_stderr ? " 2>&1" : " 2>/dev/null");
  CliResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    result.output.append(buffer, got);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string fixture(const std::string& name) {
  return std::string(GDMP_LINT_FIXTURE_DIR) + "/" + name;
}

TEST(LintCli, CleanFileExitsZero) {
  const CliResult r = run_cli(fixture("clean.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("clean"), std::string::npos) << r.output;
}

TEST(LintCli, FindingsExitOne) {
  const CliResult r = run_cli(fixture("hygiene.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[naked-new]"), std::string::npos) << r.output;
}

TEST(LintCli, UnknownFlagExitsTwo) {
  EXPECT_EQ(run_cli("--bogus").exit_code, 2);
}

TEST(LintCli, MissingLayersArgumentExitsTwo) {
  EXPECT_EQ(run_cli("--layers").exit_code, 2);
}

TEST(LintCli, UnreadableInputExitsTwo) {
  const CliResult r = run_cli(fixture("does_not_exist.cpp"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("no such file"), std::string::npos) << r.output;
}

TEST(LintCli, JsonFormatEmitsFindingsArray) {
  const CliResult r = run_cli("--format json " + fixture("hygiene.cpp"),
                              /*merge_stderr=*/false);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  ASSERT_FALSE(r.output.empty());
  EXPECT_EQ(r.output.front(), '[') << r.output;
  EXPECT_NE(r.output.find("\"rule\": \"naked-new\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"line\": "), std::string::npos) << r.output;
}

TEST(LintCli, JsonFormatOnCleanInputIsEmptyArray) {
  const CliResult r = run_cli("--format json " + fixture("clean.cpp"),
                              /*merge_stderr=*/false);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.rfind("[]", 0), 0u) << r.output;
}

TEST(LintCli, GraphDotExportsLayeredDigraph) {
  const std::string dir = fixture("graph");
  const CliResult r =
      run_cli("--graph dot --layers " + dir + "/layers.conf " + dir);
  // Findings (the fixture violates the DAG on purpose) go to stderr and
  // still yield exit 1; the DOT graph itself lands on stdout.
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("digraph"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"base\" -> \"mid\""), std::string::npos)
      << r.output;
}

}  // namespace
