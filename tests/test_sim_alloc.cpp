// Zero-allocation regression tests for the simulation kernel (DESIGN.md §5e).
//
// The fast-path claim is that steady-state schedule/fire/cancel/reschedule
// performs no heap allocation as long as callbacks fit InlineFunction's
// 64-byte buffer. This binary pins that claim by replacing the global
// operator new with a counting version and asserting the count does not
// move across a measured region. It is a separate test binary because the
// replacement is program-wide and must not leak into the main suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/simulator.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // gdmp-lint: owned-new (global operator new replacement for the counting test)
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size == 0 ? alignment : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace gdmp::sim {
namespace {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

// Production-sized capture: `this`-style pointer plus a guard and two ints —
// 32 bytes, comfortably inside the 64-byte inline buffer but beyond
// std::function's typical small-object optimisation.
struct Payload {
  std::uint64_t guard;
  std::uint64_t id;
  std::uint64_t bytes;
};

TEST(InlineFunctionAlloc, InlineCaptureAllocatesNothing) {
  std::uint64_t sink = 0;
  const Payload payload{1, 2, 3};
  const std::uint64_t before = allocation_count();
  InlineFunction<void(), 64> fn([&sink, payload] { sink += payload.id; });
  EXPECT_TRUE(fn.is_inline());
  fn();
  InlineFunction<void(), 64> moved = std::move(fn);
  moved();
  moved.reset();
  EXPECT_EQ(allocation_count(), before);
  EXPECT_EQ(sink, 4u);
}

TEST(InlineFunctionAlloc, OversizedCaptureFallsBackToOneHeapCell) {
  std::uint64_t sink = 0;
  struct Big {
    std::uint64_t words[12];  // 96 bytes: exceeds the 64-byte buffer
  };
  const Big big{{7}};
  const std::uint64_t before = allocation_count();
  InlineFunction<void(), 64> fn([&sink, big] { sink += big.words[0]; });
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(allocation_count(), before + 1);
  fn();
  // Moves of a spilled callable shuffle the pointer, never reallocate.
  InlineFunction<void(), 64> moved = std::move(fn);
  moved();
  EXPECT_EQ(allocation_count(), before + 1);
  EXPECT_EQ(sink, 14u);
}

// Self-perpetuating hold model: a fixed working set of pending events where
// every fire schedules one successor. After a warmup pass has grown the
// heap vector and slot table to their steady-state footprint, running
// thousands more events must allocate exactly nothing.
struct Hold {
  Simulator& sim;
  std::int64_t to_schedule;
  std::uint64_t sink = 0;
  std::uint32_t x = 0x2545f491u;

  void fire(const Payload& payload) {
    sink += payload.id;
    if (to_schedule <= 0) return;
    --to_schedule;
    x = x * 1664525u + 1013904223u;
    const Payload next{payload.guard, payload.id + 1, x};
    sim.schedule(static_cast<SimDuration>(x % 100 + 1),
                 [this, next] { fire(next); });
  }
};

TEST(SimulatorAlloc, SteadyStateScheduleFireAllocatesNothing) {
  Simulator sim;
  constexpr int kWorkingSet = 64;
  Hold hold{sim, /*to_schedule=*/20'000};
  for (int i = 0; i < kWorkingSet; ++i) {
    hold.fire(Payload{0xabc, static_cast<std::uint64_t>(i), 0});
  }
  // Warmup: fire a quarter of the budget so every container reaches its
  // steady-state capacity (heap vector, slot table, free list).
  while (sim.events_fired() < 5'000 && sim.step()) {
  }
  const std::uint64_t before = allocation_count();
  sim.run();
  EXPECT_EQ(allocation_count(), before);
  EXPECT_EQ(sim.events_fired(), 20'000u);
  EXPECT_GT(hold.sink, 0u);
}

TEST(SimulatorAlloc, SteadyStateCancelScheduleChurnAllocatesNothing) {
  Simulator sim;
  constexpr int kTimers = 64;
  std::uint64_t sink = 0;
  std::uint32_t x = 0x9e3779b9u;
  std::vector<EventHandle> handles(kTimers);
  const auto make_timer = [&](int i) {
    const Payload p{0xfeed, static_cast<std::uint64_t>(i), x};
    return sim.schedule(static_cast<SimDuration>(200 + x % 100),
                        [&sink, p] { sink += p.id; });
  };
  const auto churn = [&](int operations) {
    for (int op = 0; op < operations; ++op) {
      x = x * 1664525u + 1013904223u;
      const int i = static_cast<int>(x % kTimers);
      sim.cancel(handles[i]);
      handles[i] = make_timer(i);
      if ((op & 31) == 0) sim.run_until(sim.now() + 1);
    }
  };
  for (int i = 0; i < kTimers; ++i) handles[i] = make_timer(i);
  churn(1'000);  // warmup: grows the slot table / free list
  const std::uint64_t before = allocation_count();
  churn(10'000);
  EXPECT_EQ(allocation_count(), before);
}

TEST(SimulatorAlloc, RescheduleAndPeriodicTimerAllocateNothing) {
  Simulator sim;
  std::uint64_t ticks = 0;
  PeriodicTimer timer(sim, /*period=*/10, [&ticks] { ++ticks; });
  timer.start();
  std::uint64_t sink = 0;
  const Payload p{0xbeef, 1, 2};
  const EventHandle rto = sim.schedule(500, [&sink, p] { sink += p.id; });
  sim.run_until(100);  // warmup: timer armed, slot table grown
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 1'000; ++i) {
    ASSERT_TRUE(sim.reschedule(rto, 500));  // RTO re-arm: never fires
    sim.run_until(sim.now() + 10);          // periodic tick re-arms inline
  }
  EXPECT_EQ(allocation_count(), before);
  EXPECT_GE(ticks, 1'000u);
  EXPECT_EQ(sink, 0u);
}

}  // namespace
}  // namespace gdmp::sim
