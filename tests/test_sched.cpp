// Tests for the replication scheduler: cost-aware source selection,
// bounded-concurrency queueing, retry/backoff, dead-lettering, and the
// server-side hooks it attaches to.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sched/cost_selector.h"
#include "testbed/grid.h"
#include "testbed/workload.h"

namespace gdmp::sched {
namespace {

using testbed::Grid;
using testbed::GridConfig;
using testbed::GridSiteSpec;
using testbed::Site;
using testbed::two_site_config;

std::vector<Uri> hosts(std::initializer_list<const char*> names) {
  std::vector<Uri> out;
  for (const char* name : names) {
    out.push_back(make_gsiftp_uri(name, "/pool/f"));
  }
  return out;
}

TEST(CostAwareSelector, RanksUnprobedFirstThenByEstimate) {
  CostAwareSelector selector(0.3);
  const auto candidates = hosts({"a", "b", "c"});
  selector.record_mbps("a", 10.0);
  selector.record_mbps("c", 40.0);
  // "b" is unprobed: it leads the ranking; measured hosts follow by
  // descending estimate.
  const auto order = selector.rank(candidates);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(candidates[order[0]].host, "b");
  EXPECT_EQ(candidates[order[1]].host, "c");
  EXPECT_EQ(candidates[order[2]].host, "a");
}

TEST(CostAwareSelector, PendingProbeRanksLast) {
  CostAwareSelector selector(0.3);
  const auto candidates = hosts({"slow", "fast"});
  selector.record_mbps("fast", 25.0);
  selector.note_probe("slow");
  // Probe dispatched but unresolved: "slow" must not attract more work.
  const auto order = selector.rank(candidates);
  EXPECT_EQ(candidates[order[0]].host, "fast");
  EXPECT_EQ(candidates[order[1]].host, "slow");
  EXPECT_FALSE(selector.measured("slow"));
  EXPECT_EQ(selector.estimate("slow"), -1.0);
}

TEST(CostAwareSelector, EwmaSmoothsAndFailureDecays) {
  CostAwareSelector selector(0.5);
  selector.record_mbps("h", 10.0);
  EXPECT_DOUBLE_EQ(selector.estimate("h"), 10.0);
  selector.record_mbps("h", 20.0);
  EXPECT_DOUBLE_EQ(selector.estimate("h"), 15.0);
  selector.record_failure("h");
  EXPECT_DOUBLE_EQ(selector.estimate("h"), 7.5);
  // A failed probe of a never-measured host floors it at 0 so it stops
  // being probe-priority but stays selectable as a last resort.
  selector.record_failure("fresh");
  EXPECT_TRUE(selector.measured("fresh"));
  EXPECT_DOUBLE_EQ(selector.estimate("fresh"), 0.0);
  EXPECT_EQ(selector.observations(), 2);
}

TEST(CostAwareSelector, SelectorFnProbesEachHostOnce) {
  CostAwareSelector selector(0.3);
  auto fn = selector.selector_fn();
  const auto candidates = hosts({"a", "b"});
  const std::size_t first = fn(candidates);
  const std::size_t second = fn(candidates);
  // Two greedy picks with no results yet probe the two distinct hosts.
  EXPECT_NE(first, second);
  // With both probes pending, picks stay in range.
  EXPECT_LT(fn(candidates), 2u);
}

// ---------------------------------------------------------------------------
// Grid-level scheduler tests.

/// Seeds `count` identical flat files at every producer (same seed+size so
/// every copy has the same CRC), publishes them from producers[0], and
/// registers the extra producers as replica locations in the central
/// catalog.
std::vector<LogicalFileName> seed_flat_files(Grid& grid,
                                             std::vector<Site*> producers,
                                             int count, Bytes size) {
  std::vector<LogicalFileName> lfns;
  std::vector<core::PublishedFile> files;
  for (int i = 0; i < count; ++i) {
    const LogicalFileName lfn = "lfn://cms/flat/" + std::to_string(i);
    for (Site* producer : producers) {
      EXPECT_TRUE(producer->pool()
                      .add_file(producer->gdmp_server().local_path_for(lfn),
                                size, 0xF00Du + i, grid.simulator().now())
                      .is_ok());
    }
    core::PublishedFile file;
    file.lfn = lfn;
    files.push_back(file);
    lfns.push_back(lfn);
  }
  bool published = false;
  producers[0]->gdmp().publish(files, [&](Status status) {
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    published = true;
  });
  grid.run_until(grid.simulator().now() + 120 * kSecond);
  EXPECT_TRUE(published);

  int pending = 0;
  for (std::size_t p = 1; p < producers.size(); ++p) {
    Site& site = *producers[p];
    for (const LogicalFileName& lfn : lfns) {
      ++pending;
      site.gdmp_server().catalog().add_replica(
          "cms", lfn, site.name(), site.gdmp_server().url_prefix(),
          [&](Status status) {
            EXPECT_TRUE(status.is_ok()) << status.to_string();
            --pending;
          });
    }
  }
  grid.run_until(grid.simulator().now() + 120 * kSecond);
  EXPECT_EQ(pending, 0);
  return lfns;
}

GridConfig two_producer_config() {
  GridConfig config;
  GridSiteSpec fast{.name = "fast"};
  fast.wan.wan_bandwidth = 155 * kMbps;
  GridSiteSpec slow{.name = "slow"};
  slow.wan.wan_bandwidth = 10 * kMbps;
  GridSiteSpec consumer{.name = "lyon"};
  consumer.wan.wan_bandwidth = 155 * kMbps;
  config.sites = {fast, slow, consumer};
  config.event_count = 20000;
  return config;
}

TEST(ReplicationScheduler, BatchRespectsConcurrencyCaps) {
  GridConfig config = two_producer_config();
  config.sites[2].site.sched.max_concurrent = 4;
  config.sites[2].site.sched.max_per_source = 2;
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  Site& consumer = grid.site(2);
  const auto lfns = seed_flat_files(
      grid, {&grid.site(0), &grid.site(1)}, 12, 2 * kMiB);

  Status batch_status = make_error(ErrorCode::kInternal, "pending");
  Bytes batch_bytes = 0;
  bool done = false;
  consumer.scheduler().submit_batch(lfns, 0, [&](Status status, Bytes bytes) {
    batch_status = status;
    batch_bytes = bytes;
    done = true;
  });

  int max_active = 0;
  int max_per_source = 0;
  const SimTime deadline = grid.simulator().now() + 1200 * kSecond;
  while (!done && grid.simulator().now() < deadline) {
    grid.run_until(grid.simulator().now() + 50 * kMillisecond);
    max_active = std::max(max_active, consumer.scheduler().active());
    for (const char* host : {"fast", "slow"}) {
      max_per_source =
          std::max(max_per_source, consumer.scheduler().in_flight_to(host));
    }
  }
  ASSERT_TRUE(done);
  EXPECT_TRUE(batch_status.is_ok()) << batch_status.to_string();
  EXPECT_EQ(batch_bytes, 12 * 2 * kMiB);
  EXPECT_LE(max_active, 4);
  EXPECT_LE(max_per_source, 2);
  // With 12 queued files the scheduler should actually use its slots.
  EXPECT_GE(consumer.scheduler().stats().peak_active, 3);
  EXPECT_EQ(consumer.scheduler().stats().completed, 12);
  EXPECT_EQ(consumer.gdmp_server().stats().files_replicated, 12);
  EXPECT_TRUE(consumer.scheduler().idle());
  EXPECT_TRUE(consumer.scheduler().dead_letters().empty());
}

TEST(ReplicationScheduler, CostSelectorPrefersFasterSourceAfterWarmup) {
  GridConfig config = two_producer_config();
  config.sites[2].site.sched.max_concurrent = 2;
  config.sites[2].site.sched.max_per_source = 2;
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  Site& consumer = grid.site(2);
  const auto lfns = seed_flat_files(
      grid, {&grid.site(0), &grid.site(1)}, 16, 2 * kMiB);

  bool done = false;
  consumer.scheduler().submit_batch(lfns, 0, [&](Status status, Bytes) {
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    done = true;
  });
  grid.run_until(grid.simulator().now() + 3600 * kSecond);
  ASSERT_TRUE(done);

  const auto& by_source = consumer.scheduler().stats().completed_by_source;
  std::int64_t total = 0;
  for (const auto& [host, n] : by_source) total += n;
  ASSERT_EQ(total, 16);
  const auto fast = by_source.find("fast");
  ASSERT_NE(fast, by_source.end());
  // Both sources get probed, then history routes the bulk to the 155 Mbit/s
  // site (acceptance: >= 80% after warm-up).
  EXPECT_GE(fast->second, (total * 8) / 10)
      << "fast=" << fast->second << " of " << total;
  EXPECT_GT(consumer.scheduler().cost_selector().estimate("fast"),
            consumer.scheduler().cost_selector().estimate("slow"));
}

struct SchedTwoSiteFixture {
  Grid grid;

  explicit SchedTwoSiteFixture(GridConfig config = two_site_config())
      : grid(std::move(config)) {
    EXPECT_TRUE(grid.start().is_ok());
  }

  Site& producer() { return grid.site(0); }
  Site& consumer() { return grid.site(1); }

  std::vector<LogicalFileName> seed(int count, Bytes size = 2 * kMiB) {
    return seed_flat_files(grid, {&producer()}, count, size);
  }

  /// Runs in small ticks until `stop` returns true (or the deadline hits).
  void run_while(SimDuration budget, const std::function<bool()>& stop) {
    const SimTime deadline = grid.simulator().now() + budget;
    while (!stop() && grid.simulator().now() < deadline) {
      grid.run_until(grid.simulator().now() + 100 * kMillisecond);
    }
  }
};

TEST(ReplicationScheduler, PriorityOrdersDispatch) {
  GridConfig config = two_site_config();
  config.sites[1].site.sched.max_concurrent = 1;
  config.sites[1].site.sched.max_per_source = 1;
  SchedTwoSiteFixture f(config);
  const auto lfns = f.seed(4);

  std::vector<std::string> completion_order;
  const auto track = [&](const LogicalFileName& lfn) {
    return [&completion_order, lfn](Result<gridftp::TransferResult> result) {
      EXPECT_TRUE(result.is_ok()) << result.status().to_string();
      completion_order.push_back(lfn);
    };
  };
  // lfns[0] dispatches immediately; the rest queue behind it. The late
  // high-priority submission must jump the FIFO tail.
  f.consumer().scheduler().submit(lfns[0], 0, track(lfns[0]));
  f.consumer().scheduler().submit(lfns[1], 0, track(lfns[1]));
  f.consumer().scheduler().submit(lfns[2], 0, track(lfns[2]));
  f.consumer().scheduler().submit(lfns[3], 5, track(lfns[3]));

  f.run_while(1200 * kSecond, [&] { return completion_order.size() == 4; });
  ASSERT_EQ(completion_order.size(), 4u);
  EXPECT_EQ(completion_order[0], lfns[0]);
  EXPECT_EQ(completion_order[1], lfns[3]);
  EXPECT_EQ(completion_order[2], lfns[1]);
  EXPECT_EQ(completion_order[3], lfns[2]);
}

TEST(ReplicationScheduler, RetriesWithBackoffThenSucceeds) {
  GridConfig config = two_site_config();
  // Every block corrupted at the producer; the FTP client itself gets no
  // retry budget, so failure handling is entirely the scheduler's.
  config.sites[0].site.ftp.corrupt_probability = 1.0;
  config.sites[1].site.gdmp.transfer.max_attempts = 1;
  config.sites[1].site.sched.max_attempts = 6;
  config.sites[1].site.sched.initial_backoff = 2 * kSecond;
  config.sites[1].site.sched.max_backoff = 10 * kSecond;
  SchedTwoSiteFixture f(config);
  const auto lfns = f.seed(1);

  Result<gridftp::TransferResult> result =
      make_error(ErrorCode::kInternal, "pending");
  bool done = false;
  const SimTime submitted_at = f.grid.simulator().now();
  f.consumer().scheduler().submit(lfns[0], 0,
                                  [&](Result<gridftp::TransferResult> r) {
                                    result = std::move(r);
                                    done = true;
                                  });
  // Heal the link as soon as the first retry has been scheduled.
  f.run_while(600 * kSecond, [&] {
    if (f.consumer().gdmp_server().stats().replications_retried >= 1) {
      f.producer().ftp_server().set_corrupt_probability(0.0);
      return true;
    }
    return false;
  });
  ASSERT_GE(f.consumer().gdmp_server().stats().replications_retried, 1);
  f.run_while(600 * kSecond, [&] { return done; });

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(f.consumer().scheduler().dead_letters().empty());
  EXPECT_GE(f.consumer().scheduler().stats().retries, 1);
  EXPECT_EQ(f.consumer().gdmp_server().stats().files_replicated, 1);
  // The retry actually backed off: with 2 s initial backoff and 25% jitter
  // the redispatch cannot land sooner than 1.5 s after submission.
  EXPECT_GE(f.grid.simulator().now() - submitted_at, 1500 * kMillisecond);
}

TEST(ReplicationScheduler, DeadLettersAfterMaxAttempts) {
  GridConfig config = two_site_config();
  config.sites[0].site.ftp.corrupt_probability = 1.0;
  config.sites[1].site.gdmp.transfer.max_attempts = 1;
  config.sites[1].site.sched.max_attempts = 3;
  config.sites[1].site.sched.initial_backoff = 1 * kSecond;
  config.sites[1].site.sched.max_backoff = 4 * kSecond;
  SchedTwoSiteFixture f(config);
  const auto lfns = f.seed(1);

  Result<gridftp::TransferResult> result =
      make_error(ErrorCode::kInternal, "pending");
  bool done = false;
  f.consumer().scheduler().submit(lfns[0], 0,
                                  [&](Result<gridftp::TransferResult> r) {
                                    result = std::move(r);
                                    done = true;
                                  });
  f.run_while(1200 * kSecond, [&] { return done; });

  ASSERT_TRUE(done);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), ErrorCode::kCorrupted)
      << result.status().to_string();

  const auto& scheduler = f.consumer().scheduler();
  ASSERT_EQ(scheduler.dead_letters().size(), 1u);
  EXPECT_EQ(scheduler.dead_letters()[0].lfn, lfns[0]);
  EXPECT_EQ(scheduler.dead_letters()[0].attempts, 3);
  EXPECT_EQ(scheduler.stats().dead_lettered, 1);
  EXPECT_EQ(scheduler.stats().retries, 2);
  EXPECT_TRUE(scheduler.idle());

  const auto& server_stats = f.consumer().gdmp_server().stats();
  EXPECT_EQ(server_stats.replications_dead_lettered, 1);
  EXPECT_EQ(server_stats.replications_retried, 2);
  EXPECT_EQ(server_stats.files_replicated, 0);
}

TEST(ReplicationScheduler, NotificationsEnqueueThroughScheduler) {
  GridConfig config = two_site_config();
  config.sites[1].site.gdmp.auto_replicate_on_notify = true;
  config.sites[1].site.sched.max_concurrent = 2;
  SchedTwoSiteFixture f(config);

  bool subscribed = false;
  f.consumer().gdmp().subscribe(f.producer().host().id(), 2000,
                                [&](Status s) { subscribed = s.is_ok(); });
  f.grid.run_until(f.grid.simulator().now() + 30 * kSecond);
  ASSERT_TRUE(subscribed);

  const auto lfns = f.seed(4);
  f.run_while(1800 * kSecond, [&] {
    return f.consumer().gdmp_server().stats().files_replicated ==
           static_cast<std::int64_t>(lfns.size());
  });

  const auto& server_stats = f.consumer().gdmp_server().stats();
  EXPECT_EQ(server_stats.notifications_queued,
            static_cast<std::int64_t>(lfns.size()));
  EXPECT_EQ(server_stats.files_replicated,
            static_cast<std::int64_t>(lfns.size()));
  EXPECT_EQ(f.consumer().scheduler().stats().submitted,
            static_cast<std::int64_t>(lfns.size()));
  EXPECT_EQ(f.consumer().scheduler().stats().completed,
            static_cast<std::int64_t>(lfns.size()));
  for (const auto& lfn : lfns) {
    EXPECT_TRUE(f.consumer().pool().contains(
        f.consumer().gdmp_server().local_path_for(lfn)))
        << lfn;
  }
}

TEST(ReplicationScheduler, CancelPendingFiresAbortedAndSkipsTransfer) {
  GridConfig config = two_site_config();
  config.sites[1].site.sched.max_concurrent = 1;
  SchedTwoSiteFixture f(config);
  const auto lfns = f.seed(3);

  int completed = 0;
  Status cancelled_status = Status::ok();
  auto& scheduler = f.consumer().scheduler();
  const auto id0 = scheduler.submit(
      lfns[0], 0, [&](Result<gridftp::TransferResult> r) {
        EXPECT_TRUE(r.is_ok());
        ++completed;
      });
  scheduler.submit(lfns[1], 0, [&](Result<gridftp::TransferResult> r) {
    EXPECT_TRUE(r.is_ok());
    ++completed;
  });
  const auto id2 = scheduler.submit(
      lfns[2], 0,
      [&](Result<gridftp::TransferResult> r) { cancelled_status = r.status(); });

  // lfns[0] is already in flight: not cancellable. lfns[2] still queues.
  EXPECT_FALSE(scheduler.cancel(id0));
  EXPECT_TRUE(scheduler.cancel(id2));
  EXPECT_EQ(cancelled_status.code(), ErrorCode::kAborted);
  EXPECT_FALSE(scheduler.cancel(id2));  // already gone

  f.run_while(1200 * kSecond, [&] { return completed == 2; });
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(scheduler.stats().cancelled, 1);
  EXPECT_TRUE(scheduler.idle());
  EXPECT_FALSE(f.consumer().pool().contains(
      f.consumer().gdmp_server().local_path_for(lfns[2])));
}

// Regression: a selector returning an out-of-range index must be clamped
// (previous behaviour reduced it modulo the candidate count; a buggy
// selector could silently reroute transfers).
TEST(ReplicationScheduler, OutOfRangeSelectorFallsBackToFirstCandidate) {
  SchedTwoSiteFixture f;
  const auto lfns = f.seed(1);

  f.consumer().gdmp_server().set_replica_selector(
      [](const std::vector<Uri>&) { return std::size_t{999}; });
  Result<gridftp::TransferResult> result =
      make_error(ErrorCode::kInternal, "pending");
  bool done = false;
  f.consumer().gdmp().get_file(lfns[0],
                               [&](Result<gridftp::TransferResult> r) {
                                 result = std::move(r);
                                 done = true;
                               });
  f.run_while(1200 * kSecond, [&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(f.consumer().pool().contains(
      f.consumer().gdmp_server().local_path_for(lfns[0])));
}

TEST(ReplicationScheduler, FetchCatalogFromStoppedProducerFailsCleanly) {
  SchedTwoSiteFixture f;
  (void)f.seed(2);

  f.producer().gdmp_server().stop();
  bool called = false;
  Result<std::vector<core::PublishedFile>> fetched =
      make_error(ErrorCode::kInternal, "pending");
  f.consumer().gdmp().missing_from(
      f.producer().host().id(), 2000,
      [&](Result<std::vector<core::PublishedFile>> r) {
        called = true;
        fetched = std::move(r);
      });
  f.run_while(300 * kSecond, [&] { return called; });
  // A dead producer yields a prompt error, not a hang.
  ASSERT_TRUE(called);
  EXPECT_FALSE(fetched.is_ok());
}

TEST(ReplicationScheduler, BulkWorkloadHelpersRoundTrip) {
  GridConfig config = two_site_config();
  config.sites[1].site.sched.max_concurrent = 4;
  SchedTwoSiteFixture f(config);

  testbed::BulkProductionConfig bulk;
  bulk.events_per_run = 1000;
  bulk.runs = 2;
  const auto files = testbed::bulk_produce(f.producer(), bulk);
  ASSERT_FALSE(files.empty());
  f.grid.run_until(f.grid.simulator().now() + 120 * kSecond);

  Status status = make_error(ErrorCode::kInternal, "pending");
  Bytes moved = 0;
  bool done = false;
  testbed::schedule_bulk_replication(f.consumer(), files, 1,
                                     [&](Status s, Bytes bytes) {
                                       status = s;
                                       moved = bytes;
                                       done = true;
                                     });
  f.run_while(3600 * kSecond, [&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_GT(moved, 0);
  EXPECT_EQ(f.consumer().gdmp_server().stats().files_replicated,
            static_cast<std::int64_t>(files.size()));
}

}  // namespace
}  // namespace gdmp::sched
