// Tests for the network simulator and TCP Reno+SACK implementation.
#include <gtest/gtest.h>

#include <numeric>

#include "net/cross_traffic.h"
#include "net/tcp.h"
#include "net/topology.h"

namespace gdmp::net {
namespace {

struct WanFixture {
  sim::Simulator simulator;
  Network network{simulator};
  WanPath path;
  std::unique_ptr<TcpStack> stack_a;
  std::unique_ptr<TcpStack> stack_b;

  explicit WanFixture(WanConfig config = {}) {
    path = make_wan_path(network, "a", "b", config);
    stack_a = std::make_unique<TcpStack>(simulator, *path.host_a);
    stack_b = std::make_unique<TcpStack>(simulator, *path.host_b);
  }
};

TEST(Link, DropsWhenQueueFull) {
  sim::Simulator simulator;
  LinkConfig config;
  config.bandwidth = 1 * kMbps;
  config.queue_capacity = 3000;
  int delivered = 0;
  Link link(simulator, config, [&](const Packet&) { ++delivered; });
  Packet packet;
  packet.payload_len = 1000;
  for (int i = 0; i < 5; ++i) link.enqueue(packet);
  simulator.run();
  EXPECT_EQ(delivered, 2);  // 2×1040 fit in 3000; the rest dropped
  EXPECT_EQ(link.stats().packets_dropped, 3);
}

TEST(Link, SerializationPlusPropagationDelay) {
  sim::Simulator simulator;
  LinkConfig config;
  config.bandwidth = 8 * kMbps;  // 1 byte per microsecond
  config.propagation = 10 * kMillisecond;
  SimTime arrival = -1;
  Link link(simulator, config, [&](const Packet&) { arrival = simulator.now(); });
  Packet packet;
  packet.payload_len = 960;  // wire = 1000 B -> 1 ms serialization
  link.enqueue(packet);
  simulator.run();
  EXPECT_EQ(arrival, 11 * kMillisecond);
}

TEST(Link, UtilizationSampleOnEmptyWindowRepeatsLastValue) {
  sim::Simulator simulator;
  LinkConfig config;
  config.bandwidth = 8 * kMbps;  // 1 byte per microsecond
  Link link(simulator, config, [](const Packet&) {});
  Packet packet;
  packet.payload_len = 960;  // wire = 1000 B -> 1 ms busy
  link.enqueue(packet);
  simulator.run_until(2 * kMillisecond);
  const double utilization = link.sample_utilization();
  EXPECT_NEAR(utilization, 0.5, 0.01);  // 1 ms busy of a 2 ms window
  // Regression: sampling again with no sim time elapsed used to divide by
  // a zero-length window. It must repeat the last sample and leave the
  // window anchors alone.
  EXPECT_EQ(link.sample_utilization(), utilization);
  // The anchors did not move: the next real window still measures cleanly.
  link.enqueue(packet);
  simulator.run_until(4 * kMillisecond);
  EXPECT_NEAR(link.sample_utilization(), 0.5, 0.01);
}

TEST(Link, DeliveryCountersTrackArrivals) {
  sim::Simulator simulator;
  LinkConfig config;
  config.bandwidth = 8 * kMbps;
  config.queue_capacity = 3000;
  Link link(simulator, config, [](const Packet&) {});
  Packet packet;
  packet.payload_len = 1000;  // wire = 1040 B
  for (int i = 0; i < 5; ++i) link.enqueue(packet);  // 2 fit, 3 drop
  simulator.run();
  EXPECT_EQ(link.stats().packets_delivered, 2);
  EXPECT_EQ(link.stats().bytes_delivered, 2 * 1040);
  EXPECT_EQ(link.stats().bytes_sent, link.stats().bytes_delivered);
  EXPECT_EQ(link.stats().packets_dropped, 3);
}

TEST(Network, RoutesAcrossMultipleHops) {
  sim::Simulator simulator;
  Network network(simulator);
  auto path = make_wan_path(network, "x", "y");
  bool received = false;
  path.host_b->set_protocol_handler(Protocol::kDatagram,
                                    [&](const Packet&) { received = true; });
  Packet packet;
  packet.src = path.host_a->id();
  packet.dst = path.host_b->id();
  packet.protocol = Protocol::kDatagram;
  packet.payload_len = 100;
  EXPECT_TRUE(path.host_a->send(packet));
  simulator.run();
  EXPECT_TRUE(received);
}

TEST(Network, FindByName) {
  sim::Simulator simulator;
  Network network(simulator);
  make_wan_path(network, "cern", "anl");
  ASSERT_NE(network.find("cern"), nullptr);
  ASSERT_NE(network.find("anl-gw"), nullptr);
  EXPECT_EQ(network.find("slac"), nullptr);
}

TEST(Tcp, HandshakeEstablishesBothSides) {
  WanFixture f;
  TcpConfig config;
  TcpConnection::Ptr accepted;
  ASSERT_TRUE(f.stack_b->listen(
      5000, config, [&](TcpConnection::Ptr c) { accepted = std::move(c); }));
  auto client = f.stack_a->connect(f.path.host_b->id(), 5000, config);
  bool established = false;
  client->on_established = [&](const Status& s) { established = s.is_ok(); };
  f.simulator.run_until(10 * kSecond);
  EXPECT_TRUE(established);
  ASSERT_NE(accepted, nullptr);
  EXPECT_TRUE(accepted->established());
}

TEST(Tcp, ConnectToClosedPortFails) {
  WanFixture f;
  auto client = f.stack_a->connect(f.path.host_b->id(), 1234, TcpConfig{});
  Status result = Status::ok();
  bool called = false;
  client->on_established = [&](const Status& s) {
    called = true;
    result = s;
  };
  f.simulator.run_until(10 * kSecond);
  EXPECT_TRUE(called);
  EXPECT_EQ(result.code(), ErrorCode::kAborted);
}

TEST(Tcp, RealBytesArriveInOrderAndIntact) {
  WanFixture f;
  std::vector<std::uint8_t> received;
  TcpConnection::Ptr server;
  (void)f.stack_b->listen(5000, TcpConfig{}, [&](TcpConnection::Ptr c) {
    server = c;
    c->on_data = [&](std::span<const std::uint8_t> data) {
      received.insert(received.end(), data.begin(), data.end());
    };
  });
  auto client = f.stack_a->connect(f.path.host_b->id(), 5000, TcpConfig{});
  std::vector<std::uint8_t> sent(10000);
  std::iota(sent.begin(), sent.end(), 0);
  client->on_established = [&](const Status&) {
    client->send(sent);
  };
  f.simulator.run_until(30 * kSecond);
  EXPECT_EQ(received, sent);
}

TEST(Tcp, SyntheticBytesCountedExactly) {
  WanFixture f;
  Bytes received = 0;
  TcpConnection::Ptr server;
  (void)f.stack_b->listen(5000, TcpConfig{}, [&](TcpConnection::Ptr c) {
    server = c;
    c->on_synthetic_data = [&](Bytes n) { received += n; };
  });
  auto client = f.stack_a->connect(f.path.host_b->id(), 5000, TcpConfig{});
  client->on_established = [&](const Status&) {
    client->send_synthetic(5 * kMiB);
  };
  f.simulator.run_until(120 * kSecond);
  EXPECT_EQ(received, 5 * kMiB);
}

TEST(Tcp, MixedRealAndSyntheticPreserveOrder) {
  WanFixture f;
  std::string log;
  TcpConnection::Ptr server;
  (void)f.stack_b->listen(5000, TcpConfig{}, [&](TcpConnection::Ptr c) {
    server = c;
    c->on_data = [&](std::span<const std::uint8_t> d) {
      log += "r" + std::to_string(d.size());
    };
    c->on_synthetic_data = [&](Bytes n) { log += "s" + std::to_string(n); };
  });
  auto client = f.stack_a->connect(f.path.host_b->id(), 5000, TcpConfig{});
  client->on_established = [&](const Status&) {
    client->send({1, 2, 3});
    client->send_synthetic(1000);
    client->send({4, 5});
  };
  f.simulator.run_until(30 * kSecond);
  EXPECT_EQ(log, "r3s1000r2");
}

TEST(Tcp, ThroughputIsWindowLimitedWithSmallBuffers) {
  // 64 KB window / 125 ms RTT ≈ 4.2 Mbit/s — the paper's untuned baseline.
  WanFixture f;
  TcpConfig config;
  config.send_buffer = 64 * kKiB;
  config.recv_buffer = 64 * kKiB;
  TcpConnection::Ptr server;
  (void)f.stack_b->listen(5000, config, [&](TcpConnection::Ptr c) { server = c; });
  auto client = f.stack_a->connect(f.path.host_b->id(), 5000, config);
  const Bytes total = 5 * kMiB;
  SimTime finished = 0;
  client->on_established = [&](const Status&) {
    client->send_synthetic(total);
  };
  client->on_send_drained = [&] {
    if (finished == 0) finished = f.simulator.now();
  };
  f.simulator.run_until(120 * kSecond);
  ASSERT_GT(finished, 0);
  const double mbps = throughput_mbps(total, finished);
  EXPECT_GT(mbps, 3.0);
  EXPECT_LT(mbps, 5.0);
}

TEST(Tcp, TunedBufferFillsMostOfThePipe) {
  WanFixture f;
  TcpConfig config;
  config.send_buffer = 1 * kMiB;
  config.recv_buffer = 1 * kMiB;
  TcpConnection::Ptr server;
  (void)f.stack_b->listen(5000, config, [&](TcpConnection::Ptr c) { server = c; });
  auto client = f.stack_a->connect(f.path.host_b->id(), 5000, config);
  const Bytes total = 20 * kMiB;
  SimTime finished = 0;
  client->on_established = [&](const Status&) { client->send_synthetic(total); };
  client->on_send_drained = [&] {
    if (finished == 0) finished = f.simulator.now();
  };
  f.simulator.run_until(120 * kSecond);
  ASSERT_GT(finished, 0);
  EXPECT_GT(throughput_mbps(total, finished), 25.0);  // of 45 Mbit/s
}

TEST(Tcp, RecoversFromHeavyCongestionLoss) {
  // Two tuned flows overflow a BDP-sized bottleneck queue; both must still
  // finish and retransmissions must be recorded.
  WanConfig wan;
  wan.wan_queue = 704 * kKiB;  // 2 x 1 MiB windows cannot fit
  WanFixture f(wan);
  TcpConfig config;
  config.send_buffer = 1 * kMiB;
  config.recv_buffer = 1 * kMiB;
  std::vector<TcpConnection::Ptr> servers;
  (void)f.stack_b->listen(5000, config,
                    [&](TcpConnection::Ptr c) { servers.push_back(c); });
  int done = 0;
  std::vector<TcpConnection::Ptr> clients;
  for (int i = 0; i < 2; ++i) {
    auto client = f.stack_a->connect(f.path.host_b->id(), 5000, config);
    auto* client_raw = client.get();  // `clients` owns it; avoid a self-cycle
    client->on_established = [client_raw](const Status&) {
      client_raw->send_synthetic(10 * kMiB);
    };
    client->on_send_drained = [&done] { ++done; };
    clients.push_back(client);
  }
  f.simulator.run_until(300 * kSecond);
  EXPECT_EQ(done, 2);
  const auto total_retx = clients[0]->stats().retransmits +
                          clients[1]->stats().retransmits +
                          clients[0]->stats().timeouts +
                          clients[1]->stats().timeouts;
  EXPECT_GT(total_retx, 0);
  EXPECT_GT(f.path.bottleneck_ab->stats().packets_dropped, 0);
}

TEST(Tcp, GracefulCloseCompletesBothSides) {
  WanFixture f;
  TcpConnection::Ptr server;
  bool server_closed = false, client_closed = false;
  (void)f.stack_b->listen(5000, TcpConfig{}, [&](TcpConnection::Ptr c) {
    server = c;
    c->on_closed = [&](const Status& s) { server_closed = s.is_ok(); };
    auto* raw = c.get();  // `server` owns it; avoid a self-cycle
    c->on_synthetic_data = [raw](Bytes) { raw->close(); };
  });
  auto client = f.stack_a->connect(f.path.host_b->id(), 5000, TcpConfig{});
  client->on_established = [&](const Status&) {
    client->send_synthetic(1000);
    client->close();
  };
  client->on_closed = [&](const Status& s) { client_closed = s.is_ok(); };
  f.simulator.run_until(60 * kSecond);
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(f.stack_a->connection_count(), 0u);
  EXPECT_EQ(f.stack_b->connection_count(), 0u);
}

TEST(Tcp, AbortResetsPeer) {
  WanFixture f;
  TcpConnection::Ptr server;
  Status server_status = Status::ok();
  (void)f.stack_b->listen(5000, TcpConfig{}, [&](TcpConnection::Ptr c) {
    server = c;
    c->on_closed = [&](const Status& s) { server_status = s; };
  });
  auto client = f.stack_a->connect(f.path.host_b->id(), 5000, TcpConfig{});
  client->on_established = [&](const Status&) { client->abort(); };
  f.simulator.run_until(30 * kSecond);
  EXPECT_EQ(server_status.code(), ErrorCode::kAborted);
}

// Parameterized sweep: throughput must scale roughly with buffer size while
// window-limited (property derived from throughput = window / RTT).
class TcpBufferSweep : public ::testing::TestWithParam<Bytes> {};

TEST_P(TcpBufferSweep, ThroughputTracksWindowOverRtt) {
  WanFixture f;
  TcpConfig config;
  config.send_buffer = GetParam();
  config.recv_buffer = GetParam();
  TcpConnection::Ptr server;
  (void)f.stack_b->listen(5000, config, [&](TcpConnection::Ptr c) { server = c; });
  auto client = f.stack_a->connect(f.path.host_b->id(), 5000, config);
  const Bytes total = 8 * kMiB;
  SimTime finished = 0;
  client->on_established = [&](const Status&) { client->send_synthetic(total); };
  client->on_send_drained = [&] {
    if (finished == 0) finished = f.simulator.now();
  };
  f.simulator.run_until(600 * kSecond);
  ASSERT_GT(finished, 0);
  const double expected =
      static_cast<double>(GetParam()) * 8.0 / 0.125 / 1e6;  // window/RTT
  const double measured = throughput_mbps(total, finished);
  EXPECT_GT(measured, expected * 0.6);
  EXPECT_LT(measured, expected * 1.3);
}

INSTANTIATE_TEST_SUITE_P(WindowLimited, TcpBufferSweep,
                         ::testing::Values(32 * kKiB, 64 * kKiB, 128 * kKiB,
                                           256 * kKiB));

TEST(CrossTraffic, CbrOffersConfiguredRate) {
  sim::Simulator simulator;
  Network network(simulator);
  auto path = make_wan_path(network, "a", "b");
  DatagramSink sink(*path.host_b);
  CbrConfig config;
  config.rate = 10 * kMbps;
  CbrSource source(network, *path.host_a, *path.host_b, config, 5);
  source.start();
  simulator.run_until(10 * kSecond);
  source.stop();
  const double offered_mbps =
      static_cast<double>(source.bytes_offered()) * 8.0 / 10.0 / 1e6;
  EXPECT_NEAR(offered_mbps, 10.0, 0.7);
  EXPECT_GT(sink.bytes_received(), 0);
}

}  // namespace
}  // namespace gdmp::net
