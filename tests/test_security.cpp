// Tests for the simulated GSI: certificates, handshake, authorization.
#include <gtest/gtest.h>

#include "security/acl.h"
#include "security/gsi.h"

namespace gdmp::security {
namespace {

constexpr SimTime kYear = 365LL * 24 * 3600 * kSecond;

TEST(Credentials, IssueAndVerify) {
  CertificateAuthority ca("TestCA");
  const Certificate cert = ca.issue("/CN=alice", kYear);
  EXPECT_TRUE(ca.verify(cert, 0).is_ok());
  EXPECT_TRUE(ca.verify(cert, kYear - 1).is_ok());
}

TEST(Credentials, ExpiryEnforced) {
  CertificateAuthority ca("TestCA");
  const Certificate cert = ca.issue("/CN=alice", 100);
  EXPECT_EQ(ca.verify(cert, 101).code(), ErrorCode::kPermissionDenied);
}

TEST(Credentials, TamperedCertificateRejected) {
  CertificateAuthority ca("TestCA");
  Certificate cert = ca.issue("/CN=alice", kYear);
  cert.subject = "/CN=mallory";
  EXPECT_EQ(ca.verify(cert, 0).code(), ErrorCode::kPermissionDenied);
}

TEST(Credentials, ForeignCaRejected) {
  CertificateAuthority ours("OursCA", 1);
  CertificateAuthority theirs("TheirsCA", 2);
  const Certificate cert = theirs.issue("/CN=bob", kYear);
  EXPECT_FALSE(ours.verify(cert, 0).is_ok());
}

TEST(Credentials, ProxyDelegation) {
  CertificateAuthority ca("TestCA");
  const Certificate identity = ca.issue("/CN=alice", kYear);
  const Certificate proxy = ca.issue_proxy(identity, 12 * 3600 * kSecond);
  EXPECT_TRUE(proxy.is_proxy);
  EXPECT_EQ(proxy.subject, identity.subject);
  EXPECT_TRUE(ca.verify(proxy, 0).is_ok());
  EXPECT_FALSE(ca.verify(proxy, 13LL * 3600 * kSecond).is_ok());
}

TEST(Gsi, MutualHandshakeSucceeds) {
  CertificateAuthority ca("TestCA");
  Rng rng(1);
  GsiInitiator client(ca, ca.issue("/CN=client", kYear));
  GsiAcceptor server(ca, ca.issue("/CN=server", kYear));

  GsiInitiator client2(ca, ca.issue("/CN=client", kYear));
  const auto token = client.initiate(rng);
  auto accepted = server.accept(token, 0);
  ASSERT_TRUE(accepted.is_ok());
  EXPECT_EQ(accepted->context.peer, "/CN=client");
  auto context = client.complete(accepted->reply, 0);
  ASSERT_TRUE(context.is_ok());
  EXPECT_EQ(context->peer, "/CN=server");
}

TEST(Gsi, ReplyBoundToNonce) {
  CertificateAuthority ca("TestCA");
  Rng rng(1);
  GsiInitiator client_a(ca, ca.issue("/CN=a", kYear));
  GsiInitiator client_b(ca, ca.issue("/CN=b", kYear));
  GsiAcceptor server(ca, ca.issue("/CN=server", kYear));
  const auto token_a = client_a.initiate(rng);
  (void)client_b.initiate(rng);
  auto accepted = server.accept(token_a, 0);
  ASSERT_TRUE(accepted.is_ok());
  // b cannot complete with a's reply: nonce mismatch.
  EXPECT_FALSE(client_b.complete(accepted->reply, 0).is_ok());
}

TEST(Gsi, ExpiredClientRejected) {
  CertificateAuthority ca("TestCA");
  Rng rng(1);
  GsiInitiator client(ca, ca.issue("/CN=client", 100));
  GsiAcceptor server(ca, ca.issue("/CN=server", kYear));
  const auto token = client.initiate(rng);
  EXPECT_FALSE(server.accept(token, 200).is_ok());
}

TEST(Gsi, MalformedTokensRejected) {
  CertificateAuthority ca("TestCA");
  GsiAcceptor server(ca, ca.issue("/CN=server", kYear));
  const std::vector<std::uint8_t> garbage = {1, 2, 3};
  EXPECT_FALSE(server.accept(garbage, 0).is_ok());
  GsiInitiator client(ca, ca.issue("/CN=client", kYear));
  EXPECT_FALSE(client.complete(garbage, 0).is_ok());
}

TEST(Gsi, CertificateCodecRoundTrip) {
  CertificateAuthority ca("TestCA");
  const Certificate cert = ca.issue("/O=Grid/CN=x", kYear);
  auto decoded = decode_certificate(encode_certificate(cert));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded->subject, cert.subject);
  EXPECT_EQ(decoded->signature, cert.signature);
  EXPECT_EQ(decoded->not_after, cert.not_after);
}

TEST(GridMap, MapsKnownSubjects) {
  GridMap gridmap;
  gridmap.add("/CN=alice", "alice_local");
  auto mapped = gridmap.map("/CN=alice");
  ASSERT_TRUE(mapped.is_ok());
  EXPECT_EQ(*mapped, "alice_local");
  EXPECT_EQ(gridmap.map("/CN=bob").code(), ErrorCode::kPermissionDenied);
}

TEST(AccessControl, PerOperationRules) {
  AccessControl acl;
  acl.allow(Operation::kSubscribe, "/O=Grid/*");
  acl.allow(Operation::kPublish, "/O=Grid/OU=cern/*");
  EXPECT_TRUE(acl.check(Operation::kSubscribe, "/O=Grid/OU=anl/CN=x").is_ok());
  EXPECT_FALSE(acl.check(Operation::kPublish, "/O=Grid/OU=anl/CN=x").is_ok());
  EXPECT_TRUE(acl.check(Operation::kPublish, "/O=Grid/OU=cern/CN=y").is_ok());
  EXPECT_FALSE(
      acl.check(Operation::kTransferFile, "/O=Grid/OU=cern/CN=y").is_ok());
}

TEST(AccessControl, AllowAllGrantsEverything) {
  AccessControl acl;
  acl.allow_all("/O=Grid/*");
  for (const Operation op :
       {Operation::kSubscribe, Operation::kPublish, Operation::kGetCatalog,
        Operation::kTransferFile, Operation::kStageRequest}) {
    EXPECT_TRUE(acl.check(op, "/O=Grid/CN=z").is_ok());
  }
}

}  // namespace
}  // namespace gdmp::security
