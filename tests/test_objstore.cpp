// Tests for the object store: model, catalogs, federation, persistency,
// object copier.
#include <gtest/gtest.h>

#include <memory>

#include "objstore/object_copier.h"
#include "objstore/persistency.h"

namespace gdmp::objstore {
namespace {

TEST(ObjectModel, IdPackingRoundTrips) {
  const ObjectId id = make_object_id(Tier::kEsd, 123456789);
  EXPECT_EQ(tier_of(id), Tier::kEsd);
  EXPECT_EQ(event_of(id), 123456789);
}

TEST(ObjectModel, StandardTierSizes) {
  const EventModel model = EventModel::standard(1000);
  EXPECT_EQ(model.object_size(make_object_id(Tier::kTag, 0)), 100);
  EXPECT_EQ(model.object_size(make_object_id(Tier::kAod, 0)), 10 * kKiB);
  EXPECT_EQ(model.object_size(make_object_id(Tier::kEsd, 0)), 100 * kKiB);
  EXPECT_EQ(model.object_size(make_object_id(Tier::kRaw, 0)), 1 * kMiB);
  EXPECT_EQ(model.tier_bytes(Tier::kAod), 1000 * 10 * kKiB);
}

TEST(ObjectModel, AssociationsLinkSameEvent) {
  const ObjectId aod = make_object_id(Tier::kAod, 55);
  const ObjectId raw = EventModel::associated(aod, Tier::kRaw);
  EXPECT_EQ(event_of(raw), 55);
  EXPECT_EQ(tier_of(raw), Tier::kRaw);
}

struct CatalogFixture {
  EventModel model = EventModel::standard(10000);
  ObjectFileCatalog catalog;
};

TEST(ObjectFileCatalog, RangeFileLookup) {
  CatalogFixture f;
  ASSERT_TRUE(
      f.catalog.add_range_file("/f0", Tier::kAod, 0, 2000, f.model).is_ok());
  ASSERT_TRUE(
      f.catalog.add_range_file("/f1", Tier::kAod, 2000, 4000, f.model)
          .is_ok());
  const auto locations = f.catalog.locate(make_object_id(Tier::kAod, 2500));
  ASSERT_EQ(locations.size(), 1u);
  EXPECT_EQ(locations[0].file, "/f1");
  EXPECT_EQ(locations[0].offset, 500 * 10 * kKiB);
  EXPECT_TRUE(f.catalog.locate(make_object_id(Tier::kAod, 4000)).empty());
  EXPECT_TRUE(f.catalog.locate(make_object_id(Tier::kEsd, 100)).empty());
}

TEST(ObjectFileCatalog, PackedFileLookupAndOffsets) {
  CatalogFixture f;
  std::vector<ObjectId> objects = {make_object_id(Tier::kAod, 5),
                                   make_object_id(Tier::kAod, 500),
                                   make_object_id(Tier::kAod, 9000)};
  ASSERT_TRUE(f.catalog.add_packed_file("/packed", objects, f.model).is_ok());
  const auto locations = f.catalog.locate(objects[1]);
  ASSERT_EQ(locations.size(), 1u);
  EXPECT_EQ(locations[0].file, "/packed");
  EXPECT_EQ(locations[0].offset, 10 * kKiB);
  auto payload = f.catalog.file_payload("/packed", f.model);
  ASSERT_TRUE(payload.is_ok());
  EXPECT_EQ(*payload, 3 * 10 * kKiB);
}

TEST(ObjectFileCatalog, ObjectInMultipleFiles) {
  CatalogFixture f;
  const ObjectId id = make_object_id(Tier::kAod, 100);
  (void)f.catalog.add_range_file("/range", Tier::kAod, 0, 1000, f.model);
  (void)f.catalog.add_packed_file("/packed", {id}, f.model);
  EXPECT_EQ(f.catalog.locate(id).size(), 2u);
  ASSERT_TRUE(f.catalog.remove_file("/range").is_ok());
  EXPECT_EQ(f.catalog.locate(id).size(), 1u);
  ASSERT_TRUE(f.catalog.remove_file("/packed").is_ok());
  EXPECT_FALSE(f.catalog.contains(id));
}

TEST(ObjectFileCatalog, ObjectsInRangeFileEnumerated) {
  CatalogFixture f;
  (void)f.catalog.add_range_file("/f", Tier::kEsd, 10, 15, f.model);
  auto objects = f.catalog.objects_in("/f");
  ASSERT_TRUE(objects.is_ok());
  ASSERT_EQ(objects->size(), 5u);
  EXPECT_EQ(event_of(objects->front()), 10);
  EXPECT_EQ(event_of(objects->back()), 14);
}

TEST(ObjectFileCatalog, DuplicateRegistrationRejected) {
  CatalogFixture f;
  (void)f.catalog.add_range_file("/f", Tier::kAod, 0, 10, f.model);
  EXPECT_EQ(f.catalog.add_range_file("/f", Tier::kAod, 0, 10, f.model).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(f.catalog.add_packed_file("/f", {}, f.model).code(),
            ErrorCode::kAlreadyExists);
}

struct FederationFixture {
  sim::Simulator simulator;
  storage::Disk disk{simulator, storage::DiskConfig{}};
  storage::DiskPool pool{100 * kGiB, disk};
  EventModel model = EventModel::standard(10000);
  Federation federation{"test-fd", model, pool};
};

TEST(Federation, AttachRequiresLocalFile) {
  FederationFixture f;
  EXPECT_EQ(
      f.federation.attach_range_file("/ghost", Tier::kAod, 0, 100).code(),
      ErrorCode::kFailedPrecondition);
  (void)f.pool.add_file("/db", 100 * 10 * kKiB, 1, 0);
  EXPECT_TRUE(
      f.federation.attach_range_file("/db", Tier::kAod, 0, 100).is_ok());
  EXPECT_TRUE(f.federation.is_attached("/db"));
}

TEST(Federation, SchemaVersionGatesAttach) {
  FederationFixture f;
  (void)f.pool.add_file("/db", 1000, 1, 0);
  EXPECT_EQ(f.federation
                .attach_range_file("/db", Tier::kAod, 0, 100, /*schema=*/3)
                .code(),
            ErrorCode::kFailedPrecondition);
  f.federation.upgrade_schema(3);
  EXPECT_TRUE(
      f.federation.attach_range_file("/db", Tier::kAod, 0, 100, 3).is_ok());
}

TEST(Persistency, ReadsLocallyAvailableObject) {
  FederationFixture f;
  (void)f.pool.add_file("/db", 1000 * 10 * kKiB, 1, 0);
  (void)f.federation.attach_range_file("/db", Tier::kAod, 0, 1000);
  PersistencyLayer persistency(f.simulator, f.federation);
  Bytes read = 0;
  persistency.read_object(make_object_id(Tier::kAod, 500),
                          [&](Result<Bytes> r) { read = r.value_or(0); });
  f.simulator.run();
  EXPECT_EQ(read, 10 * kKiB);
  EXPECT_EQ(persistency.stats().reads, 1);
}

TEST(Persistency, MissingObjectFails) {
  FederationFixture f;
  PersistencyLayer persistency(f.simulator, f.federation);
  Status status = Status::ok();
  persistency.read_object(make_object_id(Tier::kAod, 1),
                          [&](Result<Bytes> r) { status = r.status(); });
  f.simulator.run();
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST(Persistency, NavigationFailsWithoutAssociatedFile) {
  // The §2.1 coupling: AOD attached, ESD not — navigation must fail.
  FederationFixture f;
  (void)f.pool.add_file("/aod", 1000 * 10 * kKiB, 1, 0);
  (void)f.federation.attach_range_file("/aod", Tier::kAod, 0, 1000);
  PersistencyLayer persistency(f.simulator, f.federation);
  Status status = Status::ok();
  persistency.navigate(make_object_id(Tier::kAod, 10), Tier::kEsd,
                       [&](Result<Bytes> r) { status = r.status(); });
  f.simulator.run();
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(persistency.stats().navigation_failures, 1);

  // Replicating the associated file repairs navigation.
  (void)f.pool.add_file("/esd", 1000 * 100 * kKiB, 2, 0);
  (void)f.federation.attach_range_file("/esd", Tier::kEsd, 0, 1000);
  Bytes read = 0;
  persistency.navigate(make_object_id(Tier::kAod, 10), Tier::kEsd,
                       [&](Result<Bytes> r) { read = r.value_or(0); });
  f.simulator.run();
  EXPECT_EQ(read, 100 * kKiB);
}

TEST(ObjectCopier, PacksSelectionIntoChunks) {
  FederationFixture f;
  (void)f.pool.add_file("/db", 10000LL * 10 * kKiB, 1, 0);
  (void)f.federation.attach_range_file("/db", Tier::kAod, 0, 10000);
  CopierConfig config;
  config.max_output_file = 100 * 10 * kKiB;  // 100 objects per chunk
  ObjectCopier copier(f.simulator, f.federation, config);
  std::vector<ObjectId> selection;
  for (int e = 0; e < 250; ++e) {
    selection.push_back(make_object_id(Tier::kAod, e * 37 % 10000));
  }
  std::vector<PackedOutput> chunks;
  Status final_status = make_error(ErrorCode::kInternal, "pending");
  copier.pack(selection, "/pack/sel",
              [&](const PackedOutput& chunk) { chunks.push_back(chunk); },
              [&](Status s) { final_status = s; });
  f.simulator.run();
  ASSERT_TRUE(final_status.is_ok());
  ASSERT_EQ(chunks.size(), 3u);  // 100 + 100 + 50
  std::size_t objects_total = 0;
  for (const PackedOutput& chunk : chunks) {
    objects_total += chunk.objects.size();
    EXPECT_TRUE(f.pool.contains(chunk.file.path));
    EXPECT_TRUE(f.federation.is_attached(chunk.file.path));
  }
  EXPECT_EQ(objects_total, selection.size());
  EXPECT_EQ(copier.stats().objects_copied, 250);
  EXPECT_EQ(copier.stats().bytes_copied, 250LL * 10 * kKiB);
  EXPECT_GT(copier.stats().cpu_time, 0);
}

TEST(ObjectCopier, PackedChunksAreExtractionSources) {
  FederationFixture f;
  (void)f.pool.add_file("/db", 1000LL * 10 * kKiB, 1, 0);
  (void)f.federation.attach_range_file("/db", Tier::kAod, 0, 1000);
  ObjectCopier copier(f.simulator, f.federation);
  const std::vector<ObjectId> selection = {make_object_id(Tier::kAod, 3),
                                           make_object_id(Tier::kAod, 700)};
  copier.pack(selection, "/pack/x", nullptr, [](Status) {});
  f.simulator.run();
  // The packed copy plus the original range file both hold object 3.
  EXPECT_EQ(f.federation.catalog().locate(selection[0]).size(), 2u);
}

TEST(ObjectCopier, UnavailableObjectRejected) {
  FederationFixture f;
  ObjectCopier copier(f.simulator, f.federation);
  Status status = Status::ok();
  copier.pack({make_object_id(Tier::kRaw, 1)}, "/pack/y", nullptr,
              [&](Status s) { status = s; });
  f.simulator.run();
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST(ObjectCopier, SurvivesDestructionMidPack) {
  // The copier's pump schedules disk reads and CPU charges whose completions
  // stay queued in the simulator after the copier dies. The alive_ sentinel
  // must make them no-ops — under the asan preset this is a hard
  // use-after-free check (the PR 1 bug class).
  FederationFixture f;
  (void)f.pool.add_file("/db", 10000LL * 10 * kKiB, 1, 0);
  (void)f.federation.attach_range_file("/db", Tier::kAod, 0, 10000);
  auto copier = std::make_unique<ObjectCopier>(f.simulator, f.federation);
  std::vector<ObjectId> selection;
  for (int e = 0; e < 500; ++e) {
    selection.push_back(make_object_id(Tier::kAod, e * 13 % 10000));
  }
  bool completed = false;
  copier->pack(selection, "/pack/doomed", nullptr,
               [&](Status) { completed = true; });
  // Advance far enough for reads to be in flight, then destroy the copier
  // with completions still queued.
  f.simulator.run_until(f.simulator.now() + 1 * kMillisecond);
  copier.reset();
  f.simulator.run();
  EXPECT_FALSE(completed);  // the orphaned completion chain went quiet
}

TEST(ObjectCopier, DiskIoChargedPerObject) {
  FederationFixture f;
  (void)f.pool.add_file("/db", 1000LL * 10 * kKiB, 1, 0);
  (void)f.federation.attach_range_file("/db", Tier::kAod, 0, 1000);
  const auto ops_before = f.disk.stats().operations;
  ObjectCopier copier(f.simulator, f.federation);
  std::vector<ObjectId> selection;
  for (int e = 0; e < 50; ++e) {
    selection.push_back(make_object_id(Tier::kAod, e * 17 % 1000));
  }
  copier.pack(selection, "/pack/z", nullptr, [](Status) {});
  f.simulator.run();
  // 50 per-object reads plus chunk write(s): many small I/Os — the §5.3
  // overhead signature.
  EXPECT_GE(f.disk.stats().operations - ops_before, 51);
}

}  // namespace
}  // namespace gdmp::objstore
