// Extended GDMP scenarios: associated files, file-type plug-ins,
// unsubscribe, deletion, transfer queueing, multi-source object plans.
#include <gtest/gtest.h>

#include "common/string_util.h"
#include "objrep/selection.h"
#include "testbed/grid.h"
#include "testbed/workload.h"

namespace gdmp::core {
namespace {

using testbed::Grid;
using testbed::GridConfig;
using testbed::Site;
using testbed::two_site_config;

GridConfig fast_two_site(std::int64_t events = 10'000) {
  GridConfig config = two_site_config();
  config.event_count = events;
  for (auto& spec : config.sites) {
    spec.site.gdmp.transfer.parallel_streams = 4;
    spec.site.gdmp.transfer.tcp_buffer = 1 * kMiB;
  }
  return config;
}

TEST(GdmpAssociations, ProducerAnnotatesOverlappingTiers) {
  Grid grid(fast_two_site(4000));
  ASSERT_TRUE(grid.start().is_ok());
  auto files = testbed::produce_all_tiers(grid.site(0), 0, 2000, "runX");
  ASSERT_FALSE(files.empty());
  // Every file must reference at least one other tier's overlapping file.
  for (const auto& file : files) {
    EXPECT_TRUE(file.extra.contains("assoc")) << file.lfn;
  }
  // An AOD file (2000 events/file) overlaps 4 ESD files (500 events/file).
  for (const auto& file : files) {
    if (file.lfn.find("/aod/") == std::string::npos) continue;
    int esd_assocs = 0;
    for (const auto& assoc :
         split(file.extra.at("assoc"), ',')) {
      if (assoc.find("/esd/") != std::string::npos) ++esd_assocs;
    }
    EXPECT_EQ(esd_assocs, 4) << file.lfn;
  }
}

TEST(GdmpAssociations, GetWithAssociationsPreservesNavigation) {
  Grid grid(fast_two_site(4000));
  ASSERT_TRUE(grid.start().is_ok());
  auto files = testbed::produce_all_tiers(grid.site(0), 0, 1000, "runN");
  grid.site(0).gdmp().publish(files, [](Status s) {
    ASSERT_TRUE(s.is_ok()) << s.to_string();
  });
  grid.run_until(grid.simulator().now() + 300 * kSecond);

  // Find the tag file and pull it with its associates.
  LogicalFileName tag_lfn;
  for (const auto& file : files) {
    if (file.lfn.find("/tag/") != std::string::npos) tag_lfn = file.lfn;
  }
  ASSERT_FALSE(tag_lfn.empty());
  Status status = make_error(ErrorCode::kInternal, "pending");
  grid.site(1).gdmp().get_with_associations(
      tag_lfn, [&](Status s, Bytes) { status = s; });
  grid.run_until(grid.simulator().now() + 8 * 3600 * kSecond);
  ASSERT_TRUE(status.is_ok()) << status.to_string();

  // Navigation across every tier boundary now works locally (§2.1).
  auto* persistency = grid.site(1).persistency();
  for (const objstore::Tier target :
       {objstore::Tier::kAod, objstore::Tier::kEsd, objstore::Tier::kRaw}) {
    Bytes read = 0;
    persistency->navigate(
        objstore::make_object_id(objstore::Tier::kTag, 500), target,
        [&](Result<Bytes> r) { read = r.value_or(0); });
    grid.run_until(grid.simulator().now() + kSecond);
    EXPECT_GT(read, 0) << objstore::tier_name(target);
  }
  EXPECT_EQ(persistency->stats().navigation_failures, 0);
}

TEST(Gdmp, PublishRejectsNonCanonicalPath) {
  Grid grid(fast_two_site(1000));
  ASSERT_TRUE(grid.start().is_ok());
  (void)grid.site(0).pool().add_file("/elsewhere/file", 1000, 1, 0);
  PublishedFile file;
  file.lfn = "lfn://cms/q";
  file.local_path = "/elsewhere/file";
  Status status = Status::ok();
  grid.site(0).gdmp().publish({file}, [&](Status s) { status = s; });
  grid.run_until(60 * kSecond);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

TEST(Gdmp, UnsubscribeStopsNotifications) {
  Grid grid(fast_two_site(4000));
  ASSERT_TRUE(grid.start().is_ok());
  bool subscribed = false;
  grid.site(1).gdmp().subscribe(grid.site(0).host().id(), 2000,
                                [&](Status s) { subscribed = s.is_ok(); });
  grid.run_until(30 * kSecond);
  ASSERT_TRUE(subscribed);

  // Unsubscribe via the RPC method directly.
  rpc::Writer w;
  w.str(grid.site(1).name());
  bool unsubscribed = false;
  grid.site(1)
      .gdmp_server()
      .peer(grid.site(0).host().id(), 2000)
      .call(kMethodUnsubscribe, w.take(),
            [&](Status s, std::vector<std::uint8_t>) {
              unsubscribed = s.is_ok();
            });
  grid.run_until(grid.simulator().now() + 30 * kSecond);
  ASSERT_TRUE(unsubscribed);
  EXPECT_TRUE(grid.site(0).gdmp_server().subscribers().empty());

  int notifications = 0;
  grid.site(1).gdmp_server().on_notification =
      [&](const std::string&, const PublishedFile&) { ++notifications; };
  testbed::ProductionConfig production;
  production.tier = objstore::Tier::kAod;
  production.event_hi = 2000;
  auto files = testbed::produce_run(grid.site(0), production);
  grid.site(0).gdmp().publish(files, [](Status) {});
  grid.run_until(grid.simulator().now() + 120 * kSecond);
  EXPECT_EQ(notifications, 0);
}

TEST(Gdmp, FlatAndOracleFileTypesReplicate) {
  Grid grid(fast_two_site(1000));
  ASSERT_TRUE(grid.start().is_ok());
  for (const char* type : {"flat", "oracle"}) {
    PublishedFile file;
    file.lfn = std::string("lfn://cms/") + type + "/data";
    file.file_type = type;
    (void)grid.site(0).pool().add_file("/pool/" + file.lfn, 4 * kMiB, 5, 0);
    Status published = Status::ok();
    grid.site(0).gdmp().publish({file}, [&](Status s) { published = s; });
    grid.run_until(grid.simulator().now() + 60 * kSecond);
    ASSERT_TRUE(published.is_ok()) << published.to_string();

    bool replicated = false;
    grid.site(1).gdmp().get_file(
        file.lfn, [&](Result<gridftp::TransferResult> result) {
          replicated = result.is_ok();
        });
    grid.run_until(grid.simulator().now() + 600 * kSecond);
    EXPECT_TRUE(replicated) << type;
    EXPECT_TRUE(grid.site(1).pool().contains("/pool/" + file.lfn)) << type;
    // Non-Objectivity files must not enter the federation catalog.
    EXPECT_FALSE(grid.site(1).federation()->is_attached("/pool/" + file.lfn))
        << type;
  }
}

TEST(Gdmp, DeleteFileRemovesReplicaEverywhere) {
  Grid grid(fast_two_site(4000));
  ASSERT_TRUE(grid.start().is_ok());
  testbed::ProductionConfig production;
  production.tier = objstore::Tier::kAod;
  production.event_hi = 2000;
  auto files = testbed::produce_run(grid.site(0), production);
  grid.site(0).gdmp().publish(files, [](Status) {});
  grid.run_until(grid.simulator().now() + 120 * kSecond);
  bool replicated = false;
  grid.site(1).gdmp().get_file(files[0].lfn,
                               [&](Result<gridftp::TransferResult> r) {
                                 replicated = r.is_ok();
                               });
  grid.run_until(grid.simulator().now() + 600 * kSecond);
  ASSERT_TRUE(replicated);

  // Ask the consumer's own server to delete its replica.
  rpc::Writer w;
  w.str(files[0].lfn);
  bool deleted = false;
  grid.site(0)
      .gdmp_server()
      .peer(grid.site(1).host().id(), 2000)
      .call(kMethodDeleteFile, w.take(),
            [&](Status s, std::vector<std::uint8_t>) {
              deleted = s.is_ok();
            });
  grid.run_until(grid.simulator().now() + 60 * kSecond);
  ASSERT_TRUE(deleted);
  const std::string local =
      grid.site(1).gdmp_server().local_path_for(files[0].lfn);
  EXPECT_FALSE(grid.site(1).pool().contains(local));
  EXPECT_FALSE(grid.site(1).federation()->is_attached(local));
  std::size_t locations = 99;
  grid.site(0).gdmp_server().catalog().lookup(
      "cms", files[0].lfn, [&](Result<ReplicaInfo> info) {
        if (info.is_ok()) locations = info->locations.size();
      });
  grid.run_until(grid.simulator().now() + 60 * kSecond);
  EXPECT_EQ(locations, 1u);  // only the producer copy remains
}

TEST(Gdmp, DataMoverBoundsConcurrency) {
  GridConfig config = fast_two_site(20'000);
  config.sites[1].site.gdmp.max_concurrent_transfers = 2;
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  testbed::ProductionConfig production;
  production.tier = objstore::Tier::kAod;
  production.event_hi = 12'000;
  auto files = testbed::produce_run(grid.site(0), production);
  grid.site(0).gdmp().publish(files, [](Status) {});
  grid.run_until(grid.simulator().now() + 300 * kSecond);
  std::vector<LogicalFileName> lfns;
  for (const auto& file : files) lfns.push_back(file.lfn);
  int max_in_flight = 0;
  grid.site(1).gdmp().get_files(lfns, [](Status, Bytes) {});
  auto& mover = grid.site(1).gdmp_server().data_mover();
  for (int tick = 0; tick < 4000; ++tick) {
    grid.run_until(grid.simulator().now() + kSecond);
    max_in_flight = std::max(max_in_flight, mover.in_flight());
    if (mover.in_flight() == 0 && mover.queued() == 0 && tick > 10) break;
  }
  EXPECT_LE(max_in_flight, 2);
  EXPECT_GE(max_in_flight, 2);  // it did saturate the budget
  EXPECT_EQ(mover.stats().transfers_completed,
            static_cast<std::int64_t>(lfns.size()));
}

TEST(ObjRepMultiSource, PlanSplitsAcrossProducers) {
  // Two producers each hold half the AOD tier; the consumer's collective
  // lookup must split the request and the full cycle must succeed.
  GridConfig config;
  config.event_count = 8000;
  for (const char* name : {"p1", "p2", "consumer"}) {
    testbed::GridSiteSpec spec;
    spec.name = name;
    spec.site.gdmp.transfer.parallel_streams = 4;
    spec.site.gdmp.transfer.tcp_buffer = 1 * kMiB;
    config.sites.push_back(spec);
  }
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  testbed::ProductionConfig half;
  half.tier = objstore::Tier::kAod;
  half.event_lo = 0;
  half.event_hi = 4000;
  half.run_name = "half1";
  grid.site(0).gdmp().publish(testbed::produce_run(grid.site(0), half),
                              [](Status) {});
  half.event_lo = 4000;
  half.event_hi = 8000;
  half.run_name = "half2";
  grid.site(1).gdmp().publish(testbed::produce_run(grid.site(1), half),
                              [](Status) {});
  grid.run_until(grid.simulator().now() + 300 * kSecond);

  for (std::size_t i : {0u, 1u}) {
    bool indexed = false;
    grid.site(2).objrep().refresh_index_from(
        grid.site(i).name(), grid.site(i).host().id(), 2000,
        [&](Status s) { indexed = s.is_ok(); });
    grid.run_until(grid.simulator().now() + 60 * kSecond);
    ASSERT_TRUE(indexed);
  }

  Rng rng(31);
  objrep::SelectionConfig selection;
  selection.fraction = 2e-3;
  const auto needed = objrep::select_objects(grid.model(), selection, rng);
  const auto plan = grid.site(2).objrep().index().plan(needed);
  EXPECT_EQ(plan.size(), 2u);  // both producers contribute

  bool done = false;
  grid.site(2).objrep().replicate_objects(
      needed, [&](Result<objrep::ObjectReplicationService::Outcome> result) {
        done = true;
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
      });
  grid.run_until(grid.simulator().now() + 8 * 3600 * kSecond);
  ASSERT_TRUE(done);
  for (const ObjectId id : needed) {
    EXPECT_TRUE(grid.site(2).persistency()->available(id));
  }
}

}  // namespace
}  // namespace gdmp::core
