// Tests for serialization, framing and the GSI-authenticated RPC layer.
#include <gtest/gtest.h>

#include "net/topology.h"
#include "rpc/message.h"
#include "rpc/rpc_client.h"
#include "rpc/serialize.h"
#include "rpc/rpc_server.h"

namespace gdmp::rpc {
namespace {

constexpr SimTime kYear = 365LL * 24 * 3600 * kSecond;

TEST(Serialize, RoundTripPrimitives) {
  Writer w;
  w.u8(7);
  w.u16(1000);
  w.u32(70000);
  w.u64(1ULL << 40);
  w.i64(-12345);
  w.f64(3.25);
  w.boolean(true);
  w.str("hello");
  w.bytes({9, 8, 7});
  const auto buffer = w.take();
  Reader r(buffer);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 1000);
  EXPECT_EQ(r.u32(), 70000u);
  EXPECT_EQ(r.u64(), 1ULL << 40);
  EXPECT_EQ(r.i64(), -12345);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, UnderflowSetsFailureFlag) {
  Writer w;
  w.u16(5);
  const auto buffer = w.take();
  Reader r(buffer);
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.str(), "");  // still safe after failure
}

TEST(Framing, EncodeDecodeRoundTrip) {
  RpcMessage message;
  message.kind = MessageKind::kRequest;
  message.request_id = 42;
  message.method = "rc.lookup";
  message.payload = {1, 2, 3, 4};
  const auto frame = encode_frame(message);

  FrameDecoder decoder;
  std::vector<RpcMessage> out;
  ASSERT_TRUE(decoder.feed(frame, [&](RpcMessage m) {
    out.push_back(std::move(m));
  }).is_ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].method, "rc.lookup");
  EXPECT_EQ(out[0].request_id, 42u);
  EXPECT_EQ(out[0].payload, message.payload);
}

TEST(Framing, HandlesFragmentedAndCoalescedInput) {
  RpcMessage a;
  a.method = "one";
  RpcMessage b;
  b.method = "two";
  auto frame_a = encode_frame(a);
  auto frame_b = encode_frame(b);
  std::vector<std::uint8_t> all(frame_a);
  all.insert(all.end(), frame_b.begin(), frame_b.end());

  FrameDecoder decoder;
  std::vector<std::string> methods;
  // Feed one byte at a time across both frames.
  for (const std::uint8_t byte : all) {
    ASSERT_TRUE(decoder
                    .feed(std::span(&byte, 1),
                          [&](RpcMessage m) { methods.push_back(m.method); })
                    .is_ok());
  }
  EXPECT_EQ(methods, (std::vector<std::string>{"one", "two"}));
}

TEST(Framing, OversizedFrameRejected) {
  std::vector<std::uint8_t> bogus(8, 0xff);  // length = 0xffffffff
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.feed(bogus, [](RpcMessage) {}).is_ok());
}

struct RpcFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::WanPath path;
  std::unique_ptr<net::TcpStack> stack_a;
  std::unique_ptr<net::TcpStack> stack_b;
  security::CertificateAuthority ca{"TestCA"};

  RpcFixture() {
    path = net::make_wan_path(network, "client", "server");
    stack_a = std::make_unique<net::TcpStack>(simulator, *path.host_a);
    stack_b = std::make_unique<net::TcpStack>(simulator, *path.host_b);
  }

  security::Certificate cert(const std::string& cn) {
    return ca.issue("/CN=" + cn, kYear);
  }
};

TEST(Rpc, CallRoundTripWithAuthentication) {
  RpcFixture f;
  RpcServer server(*f.stack_b, 7000, f.ca, f.cert("server"));
  server.register_method(
      "echo", [](const security::GsiContext& peer, std::uint64_t,
                 std::span<const std::uint8_t> params,
                 RpcServer::Respond respond) {
        EXPECT_EQ(peer.peer, "/CN=client");
        respond(Status::ok(),
                std::vector<std::uint8_t>(params.begin(), params.end()));
      });
  ASSERT_TRUE(server.start().is_ok());

  RpcClient client(*f.stack_a, f.path.host_b->id(), 7000, f.ca,
                   f.cert("client"));
  std::vector<std::uint8_t> reply;
  Status status = make_error(ErrorCode::kInternal, "not called");
  client.call("echo", {5, 6, 7}, [&](Status s, std::vector<std::uint8_t> r) {
    status = s;
    reply = std::move(r);
  });
  f.simulator.run_until(30 * kSecond);
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(reply, (std::vector<std::uint8_t>{5, 6, 7}));
  EXPECT_EQ(client.server_subject(), "/CN=server");
  EXPECT_EQ(server.requests_served(), 1);
}

TEST(Rpc, UnknownMethodReturnsNotFound) {
  RpcFixture f;
  RpcServer server(*f.stack_b, 7000, f.ca, f.cert("server"));
  ASSERT_TRUE(server.start().is_ok());
  RpcClient client(*f.stack_a, f.path.host_b->id(), 7000, f.ca,
                   f.cert("client"));
  Status status = Status::ok();
  client.call("nope", {}, [&](Status s, std::vector<std::uint8_t>) {
    status = s;
  });
  f.simulator.run_until(30 * kSecond);
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST(Rpc, BadCredentialRejected) {
  RpcFixture f;
  security::CertificateAuthority rogue("RogueCA", 999);
  RpcServer server(*f.stack_b, 7000, f.ca, f.cert("server"));
  ASSERT_TRUE(server.start().is_ok());
  RpcClient client(*f.stack_a, f.path.host_b->id(), 7000, f.ca,
                   rogue.issue("/CN=mallory", kYear));
  Status status = Status::ok();
  client.call("echo", {}, [&](Status s, std::vector<std::uint8_t>) {
    status = s;
  });
  f.simulator.run_until(30 * kSecond);
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(server.auth_failures(), 1);
}

TEST(Rpc, PipelinedCallsAllComplete) {
  RpcFixture f;
  RpcServer server(*f.stack_b, 7000, f.ca, f.cert("server"));
  server.register_method(
      "inc", [](const security::GsiContext&, std::uint64_t,
                std::span<const std::uint8_t> params,
                RpcServer::Respond respond) {
        Reader r(params);
        Writer w;
        w.u32(r.u32() + 1);
        respond(Status::ok(), w.take());
      });
  ASSERT_TRUE(server.start().is_ok());
  RpcClient client(*f.stack_a, f.path.host_b->id(), 7000, f.ca,
                   f.cert("client"));
  int completed = 0;
  for (std::uint32_t i = 0; i < 20; ++i) {
    Writer w;
    w.u32(i);
    client.call("inc", w.take(),
                [&completed, i](Status s, std::vector<std::uint8_t> reply) {
                  ASSERT_TRUE(s.is_ok());
                  Reader r(reply);
                  EXPECT_EQ(r.u32(), i + 1);
                  ++completed;
                });
  }
  f.simulator.run_until(60 * kSecond);
  EXPECT_EQ(completed, 20);
}

TEST(Rpc, CloseFailsPendingCallsInRequestIdOrder) {
  // Regression: pending_ was an unordered_map, so the order in which
  // fail_all() delivered failure callbacks depended on hash order. It is a
  // std::map now; close() must complete calls in ascending request id.
  RpcFixture f;
  RpcClient client(*f.stack_a, f.path.host_b->id(), 7000, f.ca,
                   f.cert("client"));
  std::vector<int> completed;
  for (int i = 0; i < 32; ++i) {
    client.call("noop", {},
                [&completed, i](Status s, std::vector<std::uint8_t>) {
                  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
                  completed.push_back(i);
                });
  }
  client.close();
  std::vector<int> want(32);
  for (int i = 0; i < 32; ++i) want[i] = i;
  EXPECT_EQ(completed, want);
}

TEST(Rpc, ServerDownYieldsUnavailable) {
  RpcFixture f;
  RpcClient client(*f.stack_a, f.path.host_b->id(), 7000, f.ca,
                   f.cert("client"));
  Status status = Status::ok();
  client.call("x", {}, [&](Status s, std::vector<std::uint8_t>) {
    status = s;
  });
  f.simulator.run_until(120 * kSecond);
  EXPECT_FALSE(status.is_ok());
}

TEST(Rpc, AsyncHandlerRespondsLater) {
  RpcFixture f;
  RpcServer server(*f.stack_b, 7000, f.ca, f.cert("server"));
  server.register_method(
      "slow", [&f](const security::GsiContext&, std::uint64_t,
                   std::span<const std::uint8_t>, RpcServer::Respond respond) {
        f.simulator.schedule(5 * kSecond, [respond = std::move(respond)] {
          respond(Status::ok(), {42});
        });
      });
  ASSERT_TRUE(server.start().is_ok());
  RpcClient client(*f.stack_a, f.path.host_b->id(), 7000, f.ca,
                   f.cert("client"));
  SimTime replied_at = 0;
  client.call("slow", {}, [&](Status s, std::vector<std::uint8_t>) {
    ASSERT_TRUE(s.is_ok());
    replied_at = f.simulator.now();
  });
  f.simulator.run_until(60 * kSecond);
  EXPECT_GT(replied_at, 5 * kSecond);
}

TEST(Rpc, CallTimeoutFires) {
  RpcFixture f;
  RpcServer server(*f.stack_b, 7000, f.ca, f.cert("server"));
  server.register_method("never",
                         [](const security::GsiContext&, std::uint64_t,
                            std::span<const std::uint8_t>,
                            RpcServer::Respond) { /* never responds */ });
  ASSERT_TRUE(server.start().is_ok());
  RpcClientConfig config;
  config.call_timeout = 10 * kSecond;
  RpcClient client(*f.stack_a, f.path.host_b->id(), 7000, f.ca,
                   f.cert("client"), config);
  Status status = Status::ok();
  client.call("never", {}, [&](Status s, std::vector<std::uint8_t>) {
    status = s;
  });
  f.simulator.run_until(60 * kSecond);
  EXPECT_EQ(status.code(), ErrorCode::kTimedOut);
}

}  // namespace
}  // namespace gdmp::rpc
