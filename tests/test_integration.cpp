// Integration tests: multi-site scenarios exercising the full stack.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/crc32.h"
#include "objrep/selection.h"
#include "testbed/grid.h"
#include "testbed/workload.h"

namespace gdmp {
namespace {

using core::PublishedFile;
using testbed::Grid;
using testbed::GridConfig;
using testbed::Site;

GridConfig three_site_config() {
  GridConfig config;
  config.event_count = 20000;
  for (const char* name : {"cern", "caltech", "slac"}) {
    testbed::GridSiteSpec spec;
    spec.name = name;
    spec.wan.wan_one_way_delay = 31 * kMillisecond;
    spec.site.gdmp.transfer.parallel_streams = 4;
    spec.site.gdmp.transfer.tcp_buffer = 1 * kMiB;
    config.sites.push_back(spec);
  }
  return config;
}

TEST(Integration, ThreeSiteFanOutReplication) {
  Grid grid(three_site_config());
  ASSERT_TRUE(grid.start().is_ok());
  Site& cern = grid.site(0);

  // Both consumers subscribe, CERN publishes, both auto-pull manually.
  for (std::size_t i : {1u, 2u}) {
    bool subscribed = false;
    grid.site(i).gdmp().subscribe(cern.host().id(), 2000,
                                  [&](Status s) { subscribed = s.is_ok(); });
    grid.run_until(grid.simulator().now() + 30 * kSecond);
    ASSERT_TRUE(subscribed);
  }
  testbed::ProductionConfig production;
  production.tier = objstore::Tier::kAod;
  production.event_hi = 4000;
  auto files = testbed::produce_run(cern, production);
  std::vector<LogicalFileName> lfns;
  for (const auto& file : files) lfns.push_back(file.lfn);
  cern.gdmp().publish(files, [](Status s) { ASSERT_TRUE(s.is_ok()); });
  grid.run_until(grid.simulator().now() + 120 * kSecond);

  for (std::size_t i : {1u, 2u}) {
    Status status = make_error(ErrorCode::kInternal, "pending");
    grid.site(i).gdmp().get_files(lfns,
                                  [&](Status s, Bytes) { status = s; });
    grid.run_until(grid.simulator().now() + 3600 * kSecond);
    EXPECT_TRUE(status.is_ok()) << status.to_string();
  }

  // Every logical file now has three catalog locations.
  std::size_t locations = 0;
  cern.gdmp_server().catalog().lookup(
      "cms", lfns[0], [&](Result<core::ReplicaInfo> info) {
        ASSERT_TRUE(info.is_ok());
        locations = info->locations.size();
      });
  grid.run_until(grid.simulator().now() + 60 * kSecond);
  EXPECT_EQ(locations, 3u);
}

TEST(Integration, SecondConsumerPullsFromNearestOfTwoReplicas) {
  // After caltech replicates from cern, slac can be served by either; the
  // replica selector hook picks the second candidate (caltech).
  Grid grid(three_site_config());
  ASSERT_TRUE(grid.start().is_ok());
  testbed::ProductionConfig production;
  production.tier = objstore::Tier::kAod;
  production.event_hi = 2000;
  auto files = testbed::produce_run(grid.site(0), production);
  const LogicalFileName lfn = files[0].lfn;
  grid.site(0).gdmp().publish(files, [](Status) {});
  grid.run_until(grid.simulator().now() + 120 * kSecond);

  bool caltech_done = false;
  grid.site(1).gdmp().get_file(
      lfn, [&](Result<gridftp::TransferResult> r) {
        caltech_done = r.is_ok();
      });
  grid.run_until(grid.simulator().now() + 1800 * kSecond);
  ASSERT_TRUE(caltech_done);

  std::vector<std::string> seen_hosts;
  grid.site(2).gdmp_server().set_replica_selector(
      [&](const std::vector<Uri>& candidates) {
        for (const Uri& uri : candidates) seen_hosts.push_back(uri.host);
        return std::size_t{1};  // prefer the second (caltech) replica
      });
  bool slac_done = false;
  grid.site(2).gdmp().get_file(
      lfn, [&](Result<gridftp::TransferResult> r) { slac_done = r.is_ok(); });
  grid.run_until(grid.simulator().now() + 1800 * kSecond);
  ASSERT_TRUE(slac_done);
  ASSERT_EQ(seen_hosts.size(), 2u);  // both replicas offered to the selector
  EXPECT_NE(std::find(seen_hosts.begin(), seen_hosts.end(), "caltech"),
            seen_hosts.end());
  EXPECT_NE(std::find(seen_hosts.begin(), seen_hosts.end(), "cern"),
            seen_hosts.end());
}

TEST(Integration, ObjectReplicationAfterFileReplication) {
  // caltech file-replicates part of the AOD tier, then slac object-
  // replicates a sparse selection; the index should allow sourcing from
  // either site.
  Grid grid(three_site_config());
  ASSERT_TRUE(grid.start().is_ok());
  testbed::ProductionConfig production;
  production.tier = objstore::Tier::kAod;
  production.event_hi = grid.model().event_count();
  auto files = testbed::produce_run(grid.site(0), production);
  grid.site(0).gdmp().publish(files, [](Status) {});
  grid.run_until(grid.simulator().now() + 120 * kSecond);

  for (const char* source_site : {"cern"}) {
    bool indexed = false;
    grid.site(2).objrep().refresh_index_from(
        source_site, grid.find_site(source_site)->host().id(), 2000,
        [&](Status s) { indexed = s.is_ok(); });
    grid.run_until(grid.simulator().now() + 60 * kSecond);
    ASSERT_TRUE(indexed);
  }

  Rng rng(11);
  objrep::SelectionConfig selection;
  selection.fraction = 1e-3;
  const auto needed = objrep::select_objects(grid.model(), selection, rng);
  bool done = false;
  grid.site(2).objrep().replicate_objects(
      needed,
      [&](Result<objrep::ObjectReplicationService::Outcome> result) {
        done = true;
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
      });
  grid.run_until(grid.simulator().now() + 7200 * kSecond);
  ASSERT_TRUE(done);
  for (const ObjectId id : needed) {
    EXPECT_TRUE(grid.site(2).persistency()->available(id));
  }
}

TEST(Integration, CrossTrafficSlowsTransfers) {
  // Untuned windows keep the flows loss-free, so the comparison is
  // deterministic: 8 x 64 KiB windows demand ~34 Mbit/s, which fits an
  // idle 45 Mbit/s link but not one sharing with 18 Mbit/s of CBR.
  double idle_mbps = 0, shared_mbps = 0;
  for (const bool shared : {false, true}) {
    GridConfig config =
        testbed::two_site_config("cern", "anl", shared ? 18 * kMbps : 0);
    config.event_count = 10000;
    for (auto& spec : config.sites) {
      spec.site.gdmp.transfer.parallel_streams = 8;
      spec.site.gdmp.transfer.tcp_buffer = 64 * kKiB;
    }
    Grid grid(config);
    ASSERT_TRUE(grid.start().is_ok());
    (void)grid.site(0).pool().add_file("/pool/lfn://cms/f", 40 * kMiB, 5, 0);
    PublishedFile file;
    file.lfn = "lfn://cms/f";
    grid.site(0).gdmp().publish({file}, [](Status) {});
    grid.run_until(grid.simulator().now() + 60 * kSecond);
    double mbps = 0;
    grid.site(1).gdmp().get_file(
        "lfn://cms/f", [&](Result<gridftp::TransferResult> r) {
          ASSERT_TRUE(r.is_ok()) << r.status().to_string();
          mbps = r->mbps;
        });
    grid.run_until(grid.simulator().now() + 3600 * kSecond);
    (shared ? shared_mbps : idle_mbps) = mbps;
  }
  EXPECT_GT(idle_mbps, shared_mbps * 1.1);
}

TEST(Integration, ReplicationSurvivesCorruptingSource) {
  GridConfig config = testbed::two_site_config();
  config.event_count = 10000;
  config.sites[0].site.ftp.corrupt_probability = 0.5;
  config.sites[0].site.ftp.fault_seed = 1;
  for (auto& spec : config.sites) {
    spec.site.gdmp.transfer.parallel_streams = 4;
    spec.site.gdmp.transfer.tcp_buffer = 1 * kMiB;
    spec.site.gdmp.transfer.max_attempts = 10;
  }
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  (void)grid.site(0).pool().add_file("/pool/lfn://cms/f", 8 * kMiB, 5, 0);
  PublishedFile file;
  file.lfn = "lfn://cms/f";
  grid.site(0).gdmp().publish({file}, [](Status) {});
  grid.run_until(grid.simulator().now() + 60 * kSecond);
  bool done = false;
  int attempts = 0;
  grid.site(1).gdmp().get_file(
      "lfn://cms/f", [&](Result<gridftp::TransferResult> r) {
        done = true;
        ASSERT_TRUE(r.is_ok()) << r.status().to_string();
        attempts = r->attempts;
      });
  grid.run_until(grid.simulator().now() + 3600 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_GT(attempts, 1);
  // The delivered replica matches the catalog checksum.
  const auto local = grid.site(1).pool().peek("/pool/lfn://cms/f");
  ASSERT_TRUE(local.is_ok());
  EXPECT_EQ(local->crc(), crc32_synthetic(5, 0, 8 * kMiB));
}

}  // namespace
}  // namespace gdmp
