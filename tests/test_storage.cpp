// Tests for the storage substrate: filesystem, disk pool, MSS, HRM.
#include <gtest/gtest.h>

#include "storage/disk_pool.h"
#include "storage/hrm.h"
#include "storage/mss.h"

namespace gdmp::storage {
namespace {

TEST(FileSystem, CreateStatRemove) {
  FileSystem fs;
  auto created = fs.create("/pool/a", 100, 7, 5);
  ASSERT_TRUE(created.is_ok());
  EXPECT_EQ(created->size, 100);
  EXPECT_TRUE(fs.exists("/pool/a"));
  EXPECT_EQ(fs.total_bytes(), 100);
  ASSERT_TRUE(fs.remove("/pool/a").is_ok());
  EXPECT_FALSE(fs.exists("/pool/a"));
  EXPECT_EQ(fs.total_bytes(), 0);
  EXPECT_EQ(fs.remove("/pool/a").code(), ErrorCode::kNotFound);
}

TEST(FileSystem, CreateRefusesOverwriteUnlessReplace) {
  FileSystem fs;
  ASSERT_TRUE(fs.create("/f", 10, 1, 0).is_ok());
  EXPECT_EQ(fs.create("/f", 20, 2, 1).code(), ErrorCode::kAlreadyExists);
  auto replaced = fs.create("/f", 20, 2, 1, /*replace=*/true);
  ASSERT_TRUE(replaced.is_ok());
  EXPECT_EQ(fs.total_bytes(), 20);
}

TEST(FileSystem, ListByPrefix) {
  FileSystem fs;
  (void)fs.create("/pool/run1.0", 1, 0, 0);
  (void)fs.create("/pool/run1.1", 1, 0, 0);
  (void)fs.create("/pool/run2.0", 1, 0, 0);
  (void)fs.create("/tmp/x", 1, 0, 0);
  EXPECT_EQ(fs.list("/pool/run1").size(), 2u);
  EXPECT_EQ(fs.list("/pool/").size(), 3u);
  EXPECT_EQ(fs.list().size(), 4u);
}

TEST(FileSystem, CrcDerivedFromSeedAndSize) {
  FileSystem fs;
  auto a = fs.create("/a", 1000, 42, 0);
  auto b = fs.create("/b", 1000, 42, 0);
  auto c = fs.create("/c", 1000, 43, 0);
  EXPECT_EQ(a->crc(), b->crc());
  EXPECT_NE(a->crc(), c->crc());
}

TEST(Disk, SerializesRequests) {
  sim::Simulator simulator;
  DiskConfig config;
  config.bandwidth = 8 * kMbps;  // 1 byte/us
  config.seek_latency = 1 * kMillisecond;
  Disk disk(simulator, config);
  SimTime first = 0, second = 0;
  disk.read(1000, [&] { first = simulator.now(); });
  disk.read(1000, [&] { second = simulator.now(); });
  simulator.run();
  EXPECT_EQ(first, 2 * kMillisecond);
  EXPECT_EQ(second, 4 * kMillisecond);
  EXPECT_EQ(disk.stats().operations, 2);
  EXPECT_EQ(disk.stats().bytes_moved, 2000);
}

struct PoolFixture {
  sim::Simulator simulator;
  Disk disk{simulator, DiskConfig{}};
};

TEST(DiskPool, EvictsLruUnpinned) {
  PoolFixture f;
  DiskPool pool(1000, f.disk);
  ASSERT_TRUE(pool.add_file("/a", 400, 1, 0).is_ok());
  ASSERT_TRUE(pool.add_file("/b", 400, 2, 1).is_ok());
  (void)pool.lookup("/a");  // /a becomes most recent; /b is LRU
  ASSERT_TRUE(pool.add_file("/c", 400, 3, 2).is_ok());
  EXPECT_TRUE(pool.contains("/a"));
  EXPECT_FALSE(pool.contains("/b"));
  EXPECT_TRUE(pool.contains("/c"));
  EXPECT_EQ(pool.stats().evictions, 1);
}

TEST(DiskPool, PinnedFilesSurviveEviction) {
  PoolFixture f;
  DiskPool pool(1000, f.disk);
  ASSERT_TRUE(pool.add_file("/a", 400, 1, 0, /*pinned=*/true).is_ok());
  ASSERT_TRUE(pool.add_file("/b", 400, 2, 1).is_ok());
  ASSERT_TRUE(pool.add_file("/c", 400, 3, 2).is_ok());
  EXPECT_TRUE(pool.contains("/a"));
  EXPECT_FALSE(pool.contains("/b"));
}

TEST(DiskPool, FailsWhenEverythingPinned) {
  PoolFixture f;
  DiskPool pool(1000, f.disk);
  ASSERT_TRUE(pool.add_file("/a", 600, 1, 0, /*pinned=*/true).is_ok());
  auto result = pool.add_file("/b", 600, 2, 1);
  EXPECT_EQ(result.code(), ErrorCode::kResourceExhausted);
}

TEST(DiskPool, ReservationHoldsSpace) {
  PoolFixture f;
  DiskPool pool(1000, f.disk);
  ASSERT_TRUE(pool.reserve(600).is_ok());
  EXPECT_EQ(pool.free_bytes(), 400);
  EXPECT_EQ(pool.add_file("/a", 600, 1, 0).code(),
            ErrorCode::kResourceExhausted);
  pool.release_reservation(600);
  EXPECT_TRUE(pool.add_file("/a", 600, 1, 0).is_ok());
}

TEST(DiskPool, HitMissAccounting) {
  PoolFixture f;
  DiskPool pool(1000, f.disk);
  (void)pool.add_file("/a", 100, 1, 0);
  (void)pool.lookup("/a");
  (void)pool.lookup("/a");
  (void)pool.lookup("/missing");
  EXPECT_EQ(pool.stats().hits, 2);
  EXPECT_EQ(pool.stats().misses, 1);
}

TEST(DiskPool, FileLargerThanPoolRejected) {
  PoolFixture f;
  DiskPool pool(1000, f.disk);
  EXPECT_EQ(pool.add_file("/big", 2000, 1, 0).code(),
            ErrorCode::kResourceExhausted);
}

TEST(Mss, ArchiveThenStageRestoresFile) {
  PoolFixture f;
  DiskPool pool(10000, f.disk);
  MassStorageSystem mss(f.simulator, MssConfig{});
  FileInfo info;
  info.path = "/pool/run.0";
  info.size = 5000;
  info.content_seed = 77;
  bool archived = false;
  mss.archive(info, [&](Status s) { archived = s.is_ok(); });
  f.simulator.run();
  ASSERT_TRUE(archived);
  EXPECT_TRUE(mss.in_archive("/pool/run.0"));

  bool staged = false;
  mss.stage("/pool/run.0", pool, [&](Result<FileInfo> r) {
    staged = r.is_ok();
    if (r.is_ok()) {
      EXPECT_EQ(r->size, 5000);
      EXPECT_EQ(r->content_seed, 77u);
      EXPECT_TRUE(r->pinned);
    }
  });
  f.simulator.run();
  EXPECT_TRUE(staged);
  EXPECT_TRUE(pool.contains("/pool/run.0"));
}

TEST(Mss, StageUnknownFileFails) {
  PoolFixture f;
  DiskPool pool(10000, f.disk);
  MassStorageSystem mss(f.simulator, MssConfig{});
  Status status = Status::ok();
  mss.stage("/nope", pool, [&](Result<FileInfo> r) { status = r.status(); });
  f.simulator.run();
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST(Mss, StagingPaysMountAndTransferTime) {
  PoolFixture f;
  DiskPool pool(1 * kGiB, f.disk);
  MssConfig config;
  config.tape_drives = 1;
  config.mount_latency = 30 * kSecond;
  config.tape_bandwidth = 15 * 8 * kMbps;
  MassStorageSystem mss(f.simulator, config);
  FileInfo info;
  info.path = "/f";
  info.size = 150 * kMiB;  // 10 s at 15 MB/s
  mss.archive(info, [](Status) {});
  f.simulator.run();
  const SimTime archive_done = f.simulator.now();
  SimTime staged_at = 0;
  mss.stage("/f", pool, [&](Result<FileInfo>) { staged_at = f.simulator.now(); });
  f.simulator.run();
  const double elapsed = to_seconds(staged_at - archive_done);
  EXPECT_NEAR(elapsed, 30.0 + 10.48, 0.5);
}

TEST(Mss, DrivesLimitParallelism) {
  PoolFixture f;
  DiskPool pool(1 * kGiB, f.disk);
  MssConfig config;
  config.tape_drives = 1;
  config.mount_latency = 10 * kSecond;
  MassStorageSystem mss(f.simulator, config);
  for (int i = 0; i < 3; ++i) {
    FileInfo info;
    info.path = "/f" + std::to_string(i);
    info.size = 1000;
    mss.archive(info, [](Status) {});
  }
  f.simulator.run();
  std::vector<SimTime> stage_times;
  const SimTime t0 = f.simulator.now();
  for (int i = 0; i < 3; ++i) {
    mss.stage("/f" + std::to_string(i), pool, [&](Result<FileInfo>) {
      stage_times.push_back(f.simulator.now() - t0);
    });
  }
  f.simulator.run();
  ASSERT_EQ(stage_times.size(), 3u);
  // With one drive, stage completions are ~10 s apart.
  EXPECT_GT(stage_times[1] - stage_times[0], 9 * kSecond);
  EXPECT_GT(stage_times[2] - stage_times[1], 9 * kSecond);
  EXPECT_EQ(mss.stats().stages, 3);
}

TEST(Hrm, ScriptStagerSlowerThanHrm) {
  PoolFixture f;
  DiskPool pool(1 * kGiB, f.disk);
  MassStorageSystem mss(f.simulator, MssConfig{});
  FileInfo info;
  info.path = "/f";
  info.size = 1000;
  mss.archive(info, [](Status) {});
  f.simulator.run();

  HrmBackend hrm(f.simulator, mss);
  ScriptStagerBackend script(f.simulator, mss);
  SimTime hrm_done = 0, script_done = 0;
  const SimTime t0 = f.simulator.now();
  hrm.stage_to_disk("/f", pool, [&](Result<FileInfo>) {
    hrm_done = f.simulator.now() - t0;
  });
  f.simulator.run();
  (void)pool.remove("/f");
  const SimTime t1 = f.simulator.now();
  script.stage_to_disk("/f", pool, [&](Result<FileInfo>) {
    script_done = f.simulator.now() - t1;
  });
  f.simulator.run();
  EXPECT_GT(script_done, hrm_done);
  EXPECT_STREQ(hrm.name(), "hrm");
  EXPECT_STREQ(script.name(), "script");
}

}  // namespace
}  // namespace gdmp::storage
