// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace gdmp::sim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule(30, [&] { order.push_back(3); });
  simulator.schedule(10, [&] { order.push_back(1); });
  simulator.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(simulator.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), 30);
}

TEST(Simulator, EqualTimesFireFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule(5, [&order, i] { order.push_back(i); });
  }
  simulator.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedSchedulingAdvancesClock) {
  Simulator simulator;
  SimTime inner_fired = -1;
  simulator.schedule(10, [&] {
    simulator.schedule(5, [&] { inner_fired = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(inner_fired, 15);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator simulator;
  simulator.schedule(100, [] {});
  simulator.run();
  SimTime fired = -1;
  simulator.schedule_at(5, [&] { fired = simulator.now(); });
  simulator.run();
  EXPECT_EQ(fired, 100);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventHandle handle = simulator.schedule(10, [&] { fired = true; });
  simulator.cancel(handle);
  simulator.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator simulator;
  int count = 0;
  const EventHandle handle = simulator.schedule(1, [&] { ++count; });
  simulator.run();
  simulator.cancel(handle);  // must not poison future bookkeeping
  simulator.schedule(1, [&] { ++count; });
  simulator.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(10, [&] { ++fired; });
  simulator.schedule(20, [&] { ++fired; });
  simulator.schedule(30, [&] { ++fired; });
  EXPECT_EQ(simulator.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.now(), 20);
  EXPECT_EQ(simulator.run_until(100), 1u);
  EXPECT_EQ(simulator.now(), 100);
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesClock) {
  Simulator simulator;
  simulator.run_until(500);
  EXPECT_EQ(simulator.now(), 500);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(1, [&] { ++fired; });
  simulator.schedule(2, [&] { ++fired; });
  EXPECT_TRUE(simulator.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(simulator.step());
  EXPECT_FALSE(simulator.step());
}

TEST(Simulator, RequestStopHaltsRun) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(1, [&] {
    ++fired;
    simulator.request_stop();
  });
  simulator.schedule(2, [&] { ++fired; });
  simulator.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.pending(), 1u);
}

TEST(Simulator, EqualTimesWithInterleavedCancelsKeepFifoOrder) {
  // Golden sequence: ten same-timestamp events, every third cancelled before
  // the clock reaches them. The survivors must still fire in scheduling
  // order — in-place heap removal must not disturb the FIFO tie-break.
  Simulator simulator;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  handles.reserve(10);
  for (int i = 0; i < 10; ++i) {
    handles.push_back(simulator.schedule(5, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 10; i += 3) simulator.cancel(handles[i]);
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 5, 7, 8}));
}

TEST(Simulator, CancelDuringCallbackOfSameTimeEvent) {
  // Event A cancels event B scheduled at the same timestamp. B is already
  // in the heap (behind A in FIFO order) and must not fire.
  Simulator simulator;
  std::vector<int> order;
  EventHandle b;
  simulator.schedule(10, [&] {
    order.push_back(1);
    simulator.cancel(b);
  });
  b = simulator.schedule(10, [&] { order.push_back(2); });
  simulator.schedule(10, [&] { order.push_back(3); });
  EXPECT_EQ(simulator.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilWithCancelledHeadPastDeadline) {
  // The earliest pending event is cancelled and the next live one lies past
  // the deadline: run_until must fire nothing and stop exactly at the
  // deadline (the cancelled head must not be mistaken for work).
  Simulator simulator;
  bool fired = false;
  const EventHandle head = simulator.schedule(10, [&] { fired = true; });
  simulator.schedule(100, [&] { fired = true; });
  simulator.cancel(head);
  EXPECT_EQ(simulator.run_until(50), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(simulator.now(), 50);
  EXPECT_EQ(simulator.pending(), 1u);
}

TEST(Simulator, RescheduleMovesEventEarlierAndLater) {
  Simulator simulator;
  std::vector<SimTime> fired_at;
  const EventHandle later = simulator.schedule(10, [&] {
    fired_at.push_back(simulator.now());
  });
  EXPECT_TRUE(simulator.reschedule_at(later, 40));  // push back
  const EventHandle earlier = simulator.schedule(30, [&] {
    fired_at.push_back(simulator.now());
  });
  EXPECT_TRUE(simulator.reschedule_at(earlier, 5));  // pull forward
  simulator.run();
  EXPECT_EQ(fired_at, (std::vector<SimTime>{5, 40}));
}

TEST(Simulator, RescheduleOfStaleHandleReturnsFalse) {
  Simulator simulator;
  int count = 0;
  const EventHandle fired = simulator.schedule(1, [&] { ++count; });
  simulator.run();
  EXPECT_FALSE(simulator.reschedule(fired, 10));
  const EventHandle cancelled = simulator.schedule(1, [&] { ++count; });
  simulator.cancel(cancelled);
  EXPECT_FALSE(simulator.reschedule(cancelled, 10));
  EXPECT_FALSE(simulator.reschedule(EventHandle{}, 10));
  simulator.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, RescheduledEventTakesFreshFifoSequence) {
  // Rescheduling onto an occupied timestamp must behave exactly like a
  // cancel+schedule pair: the moved event goes behind events already
  // scheduled at that time.
  Simulator simulator;
  std::vector<int> order;
  const EventHandle moved = simulator.schedule(5, [&] { order.push_back(1); });
  simulator.schedule(20, [&] { order.push_back(2); });
  EXPECT_TRUE(simulator.reschedule_at(moved, 20));
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Simulator, RescheduleFromOwnCallbackReArms) {
  // The RTO/PeriodicTimer pattern: an event re-arms itself from inside its
  // own callback; the callback object must persist across fires.
  Simulator simulator;
  int fires = 0;
  EventHandle handle;
  handle = simulator.schedule(10, [&] {
    ++fires;
    if (fires < 3) {
      EXPECT_TRUE(simulator.reschedule(handle, 10));
    }
  });
  simulator.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(simulator.now(), 30);
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Simulator, CancelOfFiringEventSuppressesSelfRearm) {
  // An outer actor cancels the firing event from inside its callback (via a
  // nested call chain in production; directly here). A reschedule issued in
  // the same callback before the cancel must not survive.
  Simulator simulator;
  int fires = 0;
  EventHandle handle;
  handle = simulator.schedule(10, [&] {
    ++fires;
    EXPECT_TRUE(simulator.reschedule(handle, 10));
    simulator.cancel(handle);  // teardown wins over the re-arm
  });
  simulator.run_until(1000);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator simulator;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    simulator.schedule((i * 7919) % 1000, [&] {
      if (simulator.now() < last) monotone = false;
      last = simulator.now();
    });
  }
  simulator.run();
  EXPECT_TRUE(monotone);
}

TEST(PeriodicTimer, TicksAtPeriod) {
  Simulator simulator;
  int ticks = 0;
  PeriodicTimer timer(simulator, 10, [&] { ++ticks; });
  timer.start();
  simulator.run_until(55);
  EXPECT_EQ(ticks, 5);
  timer.stop();
  simulator.run_until(200);
  EXPECT_EQ(ticks, 5);
}

TEST(PeriodicTimer, DestructionCancelsCleanly) {
  Simulator simulator;
  int ticks = 0;
  {
    PeriodicTimer timer(simulator, 10, [&] { ++ticks; });
    timer.start();
    simulator.run_until(25);
  }
  simulator.run_until(1000);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTimer, RestartAfterStop) {
  Simulator simulator;
  int ticks = 0;
  PeriodicTimer timer(simulator, 10, [&] { ++ticks; });
  timer.start();
  simulator.run_until(20);
  timer.stop();
  timer.start();
  simulator.run_until(40);
  EXPECT_EQ(ticks, 4);
}

// ------------------------------------------------------------ daemon events

TEST(Daemon, RunStopsWhenOnlyDaemonsRemain) {
  Simulator simulator;
  int work = 0, daemon_fires = 0;
  PeriodicTimer timer(simulator, 10, [&] { ++daemon_fires; });
  timer.set_daemon(true);
  timer.start();
  simulator.schedule(35, [&] { ++work; });
  // The periodic daemon alone must not keep run() alive: it fires while
  // real work is pending (t=10,20,30) and the run ends at the last
  // non-daemon event.
  simulator.run();
  EXPECT_EQ(work, 1);
  EXPECT_EQ(daemon_fires, 3);
  EXPECT_EQ(simulator.now(), 35);
  EXPECT_EQ(simulator.pending(), 1u);  // the rearmed daemon tick
  EXPECT_EQ(simulator.daemon_pending(), 1u);
}

TEST(Daemon, RunWithDaemonOnlyQueueIsANoOp) {
  Simulator simulator;
  bool fired = false;
  const EventHandle handle = simulator.schedule(20, [&] { fired = true; });
  ASSERT_TRUE(simulator.set_daemon(handle));
  EXPECT_EQ(simulator.run(), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(simulator.now(), 0);
}

TEST(Daemon, RunUntilStillFiresDaemons) {
  Simulator simulator;
  int ticks = 0;
  PeriodicTimer timer(simulator, 10, [&] { ++ticks; });
  timer.set_daemon(true);
  timer.start();
  // Bounded runs drive daemons to the deadline — only open-ended run()
  // refuses to chase them.
  simulator.run_until(55);
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(simulator.now(), 55);
}

TEST(Daemon, SetDaemonCancelAndStaleHandleBookkeeping) {
  Simulator simulator;
  const EventHandle handle = simulator.schedule(10, [] {});
  EXPECT_EQ(simulator.daemon_pending(), 0u);
  EXPECT_TRUE(simulator.set_daemon(handle));
  EXPECT_EQ(simulator.daemon_pending(), 1u);
  EXPECT_TRUE(simulator.set_daemon(handle, false));
  EXPECT_EQ(simulator.daemon_pending(), 0u);
  EXPECT_TRUE(simulator.set_daemon(handle));
  simulator.cancel(handle);
  EXPECT_EQ(simulator.daemon_pending(), 0u);
  EXPECT_FALSE(simulator.set_daemon(handle));  // stale handle
}

TEST(Daemon, FlagSurvivesPeriodicRearm) {
  Simulator simulator;
  int ticks = 0;
  PeriodicTimer timer(simulator, 10, [&] { ++ticks; });
  timer.set_daemon(true);
  timer.start();
  EXPECT_TRUE(timer.daemon());
  simulator.schedule(25, [] {});
  simulator.run();  // daemon ticks at 10, 20; work at 25
  EXPECT_EQ(ticks, 2);
  // The rearmed tick is still a daemon: a second run() with fresh work
  // stops at that work again instead of chasing the timer.
  EXPECT_EQ(simulator.daemon_pending(), 1u);
  simulator.schedule(20, [] {});  // 20 past now=25 -> fires at t=45
  simulator.run();
  EXPECT_EQ(ticks, 4);  // t=30, 40
  EXPECT_EQ(simulator.now(), 45);
}

}  // namespace
}  // namespace gdmp::sim
