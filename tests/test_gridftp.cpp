// Tests for the GridFTP protocol pieces and end-to-end transfers.
#include <gtest/gtest.h>

#include "common/crc32.h"
#include "gridftp/block_stream.h"
#include "gridftp/client.h"
#include "gridftp/server.h"
#include "net/topology.h"

namespace gdmp::gridftp {
namespace {

constexpr SimTime kYear = 365LL * 24 * 3600 * kSecond;

TEST(Protocol, PartitionRangeEvenSplit) {
  const auto parts = partition_range(ByteRange{0, 100}, 4, 100);
  ASSERT_EQ(parts.size(), 4u);
  Bytes total = 0;
  Bytes cursor = 0;
  for (const ByteRange& part : parts) {
    EXPECT_EQ(part.offset, cursor);
    cursor += part.length;
    total += part.length;
  }
  EXPECT_EQ(total, 100);
}

TEST(Protocol, PartitionRangeRemainderSpread) {
  const auto parts = partition_range(ByteRange{10, 7}, 3, 0);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].length, 3);
  EXPECT_EQ(parts[1].length, 2);
  EXPECT_EQ(parts[2].length, 2);
  EXPECT_EQ(parts[0].offset, 10);
}

TEST(Protocol, PartitionMorePartsThanBytes) {
  const auto parts = partition_range(ByteRange{0, 2}, 5, 2);
  EXPECT_EQ(parts.size(), 2u);
}

TEST(Protocol, OpenEndedRangeUsesFileSize) {
  const auto parts = partition_range(ByteRange{100, -1}, 2, 300);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].offset, 100);
  EXPECT_EQ(parts[0].length + parts[1].length, 200);
}

TEST(Protocol, HeaderCodecs) {
  rpc::Writer w;
  BlockHeader header{1234, 5678, 0xfeedULL};
  header.encode(w);
  auto decoded = BlockHeader::decode(w.buffer());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->offset, 1234);
  EXPECT_EQ(decoded->length, 5678);
  EXPECT_EQ(decoded->content_seed, 0xfeedULL);

  rpc::Writer hw;
  DataHello hello{0xabcdULL, 3};
  hello.encode(hw);
  auto hello_decoded = DataHello::decode(hw.buffer());
  ASSERT_TRUE(hello_decoded.has_value());
  EXPECT_EQ(hello_decoded->session_token, 0xabcdULL);
  EXPECT_EQ(hello_decoded->stream_index, 3);
}

TEST(BlockStream, ParsesHeaderPayloadSequence) {
  BlockStreamParser parser;
  std::vector<std::pair<Bytes, Bytes>> blocks;  // (offset, length)
  bool eod = false;
  parser.on_block_end = [&](const BlockHeader& h) {
    blocks.emplace_back(h.offset, h.length);
  };
  parser.on_eod = [&] { eod = true; };

  rpc::Writer w;
  BlockHeader{0, 500, 1}.encode(w);
  parser.feed_data(w.buffer());
  parser.feed_synthetic(200);
  parser.feed_synthetic(300);
  rpc::Writer w2;
  BlockHeader{500, 100, 1}.encode(w2);
  parser.feed_data(w2.buffer());
  parser.feed_synthetic(100);
  rpc::Writer w3;
  BlockHeader eod_header;
  eod_header.offset = -1;
  eod_header.encode(w3);
  parser.feed_data(w3.buffer());

  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], (std::pair<Bytes, Bytes>{0, 500}));
  EXPECT_EQ(blocks[1], (std::pair<Bytes, Bytes>{500, 100}));
  EXPECT_TRUE(eod);
}

TEST(BlockStream, FragmentedHeaderAccumulates) {
  BlockStreamParser parser;
  int begun = 0;
  parser.on_block_begin = [&](const BlockHeader&) { ++begun; };
  rpc::Writer w;
  BlockHeader{0, 10, 1}.encode(w);
  const auto& buffer = w.buffer();
  for (const std::uint8_t byte : buffer) {
    parser.feed_data(std::span(&byte, 1));
  }
  EXPECT_EQ(begun, 1);
}

TEST(BlockStream, SyntheticOutsidePayloadIsError) {
  BlockStreamParser parser;
  Status error = Status::ok();
  parser.on_error = [&](const Status& s) { error = s; };
  parser.feed_synthetic(100);
  EXPECT_FALSE(error.is_ok());
}

TEST(RangeSet, AddCoalesceAndMissing) {
  RangeSet set;
  set.add(0, 100);
  set.add(200, 100);
  set.add(100, 50);  // adjacent: coalesces with [0,100)
  EXPECT_EQ(set.total_bytes(), 250);
  EXPECT_EQ(set.ranges().size(), 2u);
  EXPECT_TRUE(set.covers(0, 150));
  EXPECT_FALSE(set.covers(0, 200));
  const auto missing = set.missing_within(0, 300);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].offset, 150);
  EXPECT_EQ(missing[0].length, 50);
}

TEST(RangeSet, OverlapsMerge) {
  RangeSet set;
  set.add(10, 50);
  set.add(30, 100);
  set.add(0, 15);
  EXPECT_EQ(set.ranges().size(), 1u);
  EXPECT_EQ(set.total_bytes(), 130);
  EXPECT_TRUE(set.missing_within(0, 130).empty());
}

struct FtpFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::WanPath path;
  std::unique_ptr<net::TcpStack> stack_a;
  std::unique_ptr<net::TcpStack> stack_b;
  security::CertificateAuthority ca{"TestCA"};
  storage::DiskConfig disk_config{};
  std::unique_ptr<storage::Disk> disk_a, disk_b;
  std::unique_ptr<storage::DiskPool> pool_a, pool_b;
  std::unique_ptr<FtpServer> server;
  std::unique_ptr<FtpClient> client;

  explicit FtpFixture(FtpServerConfig server_config = {}) {
    path = net::make_wan_path(network, "src", "dst");
    stack_a = std::make_unique<net::TcpStack>(simulator, *path.host_a);
    stack_b = std::make_unique<net::TcpStack>(simulator, *path.host_b);
    disk_a = std::make_unique<storage::Disk>(simulator, disk_config);
    disk_b = std::make_unique<storage::Disk>(simulator, disk_config);
    pool_a = std::make_unique<storage::DiskPool>(100 * kGiB, *disk_a);
    pool_b = std::make_unique<storage::DiskPool>(100 * kGiB, *disk_b);
    server = std::make_unique<FtpServer>(*stack_a, *pool_a, ca,
                                         ca.issue("/CN=src", kYear),
                                         server_config);
    client = std::make_unique<FtpClient>(*stack_b, ca,
                                         ca.issue("/CN=dst", kYear));
    EXPECT_TRUE(server->start().is_ok());
  }
};

TEST(Ftp, GetTransfersFileWithCorrectContent) {
  FtpFixture f;
  (void)f.pool_a->add_file("/pool/f", 2 * kMiB, 0x1234, 0);
  TransferOptions options;
  options.parallel_streams = 2;
  bool done = false;
  f.client->get(f.path.host_a->id(), kControlPort, "/pool/f", "/pool/f",
                f.pool_b.get(), options, [&](Result<TransferResult> result) {
                  done = true;
                  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
                  EXPECT_EQ(result->bytes, 2 * kMiB);
                  EXPECT_EQ(result->content_seed, 0x1234u);
                  EXPECT_EQ(result->crc, crc32_synthetic(0x1234, 0, 2 * kMiB));
                });
  f.simulator.run_until(300 * kSecond);
  ASSERT_TRUE(done);
  auto local = f.pool_b->peek("/pool/f");
  ASSERT_TRUE(local.is_ok());
  EXPECT_EQ(local->size, 2 * kMiB);
  EXPECT_EQ(local->content_seed, 0x1234u);
}

TEST(Ftp, GetMissingFileFails) {
  FtpFixture f;
  Status status = Status::ok();
  f.client->get(f.path.host_a->id(), kControlPort, "/pool/none", "/x",
                f.pool_b.get(), TransferOptions{},
                [&](Result<TransferResult> result) {
                  status = result.status();
                });
  f.simulator.run_until(60 * kSecond);
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST(Ftp, PartialTransferMovesOnlyRange) {
  FtpFixture f;
  (void)f.pool_a->add_file("/pool/f", 10 * kMiB, 7, 0);
  TransferOptions options;
  options.range = ByteRange{1 * kMiB, 2 * kMiB};
  bool done = false;
  f.client->get(f.path.host_a->id(), kControlPort, "/pool/f", "/pool/part",
                f.pool_b.get(), options, [&](Result<TransferResult> result) {
                  done = true;
                  ASSERT_TRUE(result.is_ok());
                  EXPECT_EQ(result->bytes, 2 * kMiB);
                  EXPECT_EQ(result->crc,
                            crc32_synthetic(7, 1 * kMiB, 2 * kMiB));
                });
  f.simulator.run_until(300 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(f.pool_b->peek("/pool/part")->size, 2 * kMiB);
}

TEST(Ftp, OutOfBoundsRangeRejected) {
  FtpFixture f;
  (void)f.pool_a->add_file("/pool/f", 1 * kMiB, 7, 0);
  TransferOptions options;
  options.range = ByteRange{512 * kKiB, 1 * kMiB};
  Status status = Status::ok();
  f.client->get(f.path.host_a->id(), kControlPort, "/pool/f", "/x",
                f.pool_b.get(), options, [&](Result<TransferResult> r) {
                  status = r.status();
                });
  f.simulator.run_until(60 * kSecond);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

TEST(Ftp, PutStoresFileRemotely) {
  FtpFixture f;
  (void)f.pool_b->add_file("/local/f", 3 * kMiB, 0x77, 0);
  TransferOptions options;
  options.parallel_streams = 3;
  bool done = false;
  f.client->put(f.path.host_a->id(), kControlPort, *f.pool_b, "/local/f",
                "/pool/stored", options, [&](Result<TransferResult> result) {
                  done = true;
                  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
                  EXPECT_EQ(result->bytes, 3 * kMiB);
                });
  f.simulator.run_until(300 * kSecond);
  ASSERT_TRUE(done);
  auto stored = f.pool_a->peek("/pool/stored");
  ASSERT_TRUE(stored.is_ok());
  EXPECT_EQ(stored->size, 3 * kMiB);
  EXPECT_EQ(stored->content_seed, 0x77u);
}

TEST(Ftp, CorruptionDetectedAndRepairedByRestart) {
  FtpServerConfig config;
  config.corrupt_probability = 0.3;
  config.fault_seed = 11;
  FtpFixture f(config);
  (void)f.pool_a->add_file("/pool/f", 4 * kMiB, 0x5151, 0);
  TransferOptions options;
  options.parallel_streams = 4;
  options.expected_crc = crc32_synthetic(0x5151, 0, 4 * kMiB);
  options.max_attempts = 10;
  bool done = false;
  f.client->get(f.path.host_a->id(), kControlPort, "/pool/f", "/pool/f",
                f.pool_b.get(), options, [&](Result<TransferResult> result) {
                  done = true;
                  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
                  EXPECT_GT(result->attempts, 1);
                  EXPECT_EQ(result->content_seed, 0x5151u);
                });
  f.simulator.run_until(600 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_GT(f.server->stats().blocks_corrupted, 0);
}

TEST(Ftp, PersistentCorruptionExhaustsAttempts) {
  FtpServerConfig config;
  config.corrupt_probability = 1.0;  // every block poisoned
  FtpFixture f(config);
  (void)f.pool_a->add_file("/pool/f", 1 * kMiB, 3, 0);
  TransferOptions options;
  options.expected_crc = crc32_synthetic(3, 0, 1 * kMiB);
  options.max_attempts = 2;
  Status status = Status::ok();
  f.client->get(f.path.host_a->id(), kControlPort, "/pool/f", "/pool/f",
                f.pool_b.get(), options, [&](Result<TransferResult> result) {
                  status = result.status();
                });
  f.simulator.run_until(600 * kSecond);
  EXPECT_EQ(status.code(), ErrorCode::kCorrupted);
}

TEST(Ftp, SizeChecksumDeleteCommands) {
  FtpFixture f;
  (void)f.pool_a->add_file("/pool/f", 1 * kMiB, 9, 0);
  Bytes size = 0;
  std::uint32_t crc = 0;
  f.client->file_size(f.path.host_a->id(), kControlPort, "/pool/f",
                      [&](Result<Bytes> r) { size = r.value_or(-1); });
  f.client->checksum(f.path.host_a->id(), kControlPort, "/pool/f",
                     [&](Result<std::uint32_t> r) { crc = r.value_or(0); });
  f.simulator.run_until(60 * kSecond);
  EXPECT_EQ(size, 1 * kMiB);
  EXPECT_EQ(crc, crc32_synthetic(9, 0, 1 * kMiB));

  Status deleted = make_error(ErrorCode::kInternal, "pending");
  f.client->remove_remote(f.path.host_a->id(), kControlPort, "/pool/f",
                          [&](Status s) { deleted = s; });
  f.simulator.run_until(120 * kSecond);
  EXPECT_TRUE(deleted.is_ok());
  EXPECT_FALSE(f.pool_a->contains("/pool/f"));
}

TEST(Ftp, ParallelStreamsImproveUntunedThroughput) {
  double one_stream = 0, four_streams = 0;
  for (const int streams : {1, 4}) {
    FtpFixture f;
    (void)f.pool_a->add_file("/pool/f", 10 * kMiB, 1, 0);
    TransferOptions options;
    options.parallel_streams = streams;
    options.tcp_buffer = 64 * kKiB;
    double mbps = 0;
    f.client->get(f.path.host_a->id(), kControlPort, "/pool/f", "/pool/f",
                  f.pool_b.get(), options, [&](Result<TransferResult> r) {
                    if (r.is_ok()) mbps = r->mbps;
                  });
    f.simulator.run_until(600 * kSecond);
    (streams == 1 ? one_stream : four_streams) = mbps;
  }
  EXPECT_GT(one_stream, 2.0);
  EXPECT_GT(four_streams, one_stream * 2.5);
}

TEST(Ftp, ThirdPartyTransferBetweenServers) {
  // Build a 3-node star so a controller can steer src -> dst.
  sim::Simulator simulator;
  net::Network network(simulator);
  std::vector<net::GridSiteLink> links(3);
  links[0].site_name = "ctl";
  links[1].site_name = "src";
  links[2].site_name = "dst";
  auto topo = net::make_grid_topology(network, links);
  security::CertificateAuthority ca("TestCA");
  net::TcpStack ctl_stack(simulator, *topo.hosts[0]);
  net::TcpStack src_stack(simulator, *topo.hosts[1]);
  net::TcpStack dst_stack(simulator, *topo.hosts[2]);
  storage::Disk disk_src(simulator, {}), disk_dst(simulator, {});
  storage::DiskPool pool_src(10 * kGiB, disk_src), pool_dst(10 * kGiB, disk_dst);
  FtpServer src_server(src_stack, pool_src, ca, ca.issue("/CN=src", kYear));
  FtpServer dst_server(dst_stack, pool_dst, ca, ca.issue("/CN=dst", kYear));
  ASSERT_TRUE(src_server.start().is_ok());
  ASSERT_TRUE(dst_server.start().is_ok());
  (void)pool_src.add_file("/pool/f", 2 * kMiB, 0xbeef, 0);

  FtpClient controller(ctl_stack, ca, ca.issue("/CN=ctl", kYear));
  bool done = false;
  TransferOptions options;
  options.parallel_streams = 2;
  controller.third_party(topo.hosts[1]->id(), kControlPort, "/pool/f",
                         topo.hosts[2]->id(), kControlPort, "/pool/f",
                         options, [&](Result<TransferResult> result) {
                           done = true;
                           ASSERT_TRUE(result.is_ok())
                               << result.status().to_string();
                           EXPECT_EQ(result->bytes, 2 * kMiB);
                         });
  simulator.run_until(600 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_TRUE(pool_dst.contains("/pool/f"));
  EXPECT_EQ(src_server.stats().third_party, 1);
}

TEST(Ftp, RateMonitorRecordsSamples) {
  FtpFixture f;
  (void)f.pool_a->add_file("/pool/f", 8 * kMiB, 2, 0);
  TransferOptions options;
  options.tcp_buffer = 1 * kMiB;
  TimeSeries series;
  f.client->get(f.path.host_a->id(), kControlPort, "/pool/f", "/pool/f",
                f.pool_b.get(), options, [&](Result<TransferResult> result) {
                  ASSERT_TRUE(result.is_ok());
                  series = result->rate_series;
                });
  f.simulator.run_until(300 * kSecond);
  EXPECT_GT(series.points().size(), 2u);
}

}  // namespace
}  // namespace gdmp::gridftp
