// Tests for the globus_url_copy front end: URL resolution, remote copies,
// striped multi-source retrieval, and replica selection strategies.
#include <gtest/gtest.h>

#include "common/crc32.h"
#include "gdmp/replica_selection.h"
#include "gridftp/server.h"
#include "gridftp/url_copy.h"
#include "net/topology.h"

namespace gdmp::gridftp {
namespace {

constexpr SimTime kYear = 365LL * 24 * 3600 * kSecond;

struct StarFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::GridTopology topo;
  security::CertificateAuthority ca{"TestCA"};
  std::vector<std::unique_ptr<net::TcpStack>> stacks;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::vector<std::unique_ptr<storage::DiskPool>> pools;
  std::vector<std::unique_ptr<FtpServer>> servers;

  explicit StarFixture(std::vector<std::string> names) {
    std::vector<net::GridSiteLink> links;
    for (const auto& name : names) links.push_back({name, {}});
    topo = net::make_grid_topology(network, links);
    for (std::size_t i = 0; i < names.size(); ++i) {
      stacks.push_back(
          std::make_unique<net::TcpStack>(simulator, *topo.hosts[i]));
      disks.push_back(std::make_unique<storage::Disk>(simulator,
                                                      storage::DiskConfig{}));
      pools.push_back(
          std::make_unique<storage::DiskPool>(100 * kGiB, *disks.back()));
      servers.push_back(std::make_unique<FtpServer>(
          *stacks.back(), *pools.back(), ca,
          ca.issue("/CN=" + names[i], kYear)));
      EXPECT_TRUE(servers.back()->start().is_ok());
    }
  }
};

TEST(UrlCopy, CopyToLocalResolvesUrl) {
  StarFixture f({"ctl", "src"});
  (void)f.pools[1]->add_file("/pool/f", 2 * kMiB, 0xaa, 0);
  UrlCopy copier(f.network, *f.stacks[0], f.ca,
                 f.ca.issue("/CN=user", kYear));
  bool done = false;
  copier.copy_to_local("gsiftp://src:2811/pool/f", "/local/f", *f.pools[0],
                       TransferOptions{}, [&](Result<TransferResult> r) {
                         done = true;
                         ASSERT_TRUE(r.is_ok()) << r.status().to_string();
                         EXPECT_EQ(r->bytes, 2 * kMiB);
                       });
  f.simulator.run_until(600 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_TRUE(f.pools[0]->contains("/local/f"));
}

TEST(UrlCopy, RejectsBadUrls) {
  StarFixture f({"ctl"});
  UrlCopy copier(f.network, *f.stacks[0], f.ca,
                 f.ca.issue("/CN=user", kYear));
  Status status = Status::ok();
  copier.copy_to_local("http://src/pool/f", "/x", *f.pools[0],
                       TransferOptions{},
                       [&](Result<TransferResult> r) { status = r.status(); });
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  copier.copy_to_local("gsiftp://nosuchhost/pool/f", "/x", *f.pools[0],
                       TransferOptions{},
                       [&](Result<TransferResult> r) { status = r.status(); });
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST(UrlCopy, CopyFromLocalAndRemote) {
  StarFixture f({"ctl", "a", "b"});
  (void)f.pools[0]->add_file("/local/x", 1 * kMiB, 0xbb, 0);
  UrlCopy copier(f.network, *f.stacks[0], f.ca,
                 f.ca.issue("/CN=user", kYear));
  bool put_done = false;
  copier.copy_from_local(*f.pools[0], "/local/x", "gsiftp://a:2811/pool/x",
                         TransferOptions{},
                         [&](Result<TransferResult> r) {
                           put_done = r.is_ok();
                         });
  f.simulator.run_until(600 * kSecond);
  ASSERT_TRUE(put_done);
  ASSERT_TRUE(f.pools[1]->contains("/pool/x"));

  // Third-party: a -> b without the payload touching ctl.
  bool remote_done = false;
  copier.copy_remote("gsiftp://a:2811/pool/x", "gsiftp://b:2811/pool/x",
                     TransferOptions{},
                     [&](Result<TransferResult> r) {
                       remote_done = r.is_ok();
                     });
  f.simulator.run_until(f.simulator.now() + 600 * kSecond);
  ASSERT_TRUE(remote_done);
  EXPECT_TRUE(f.pools[2]->contains("/pool/x"));
}

TEST(UrlCopy, StripedGetAssemblesFromMultipleSources) {
  StarFixture f({"dst", "s1", "s2", "s3"});
  const Bytes size = 6 * kMiB;
  for (std::size_t i : {1u, 2u, 3u}) {
    (void)f.pools[i]->add_file("/pool/big", size, 0xcc, 0);
  }
  UrlCopy copier(f.network, *f.stacks[0], f.ca,
                 f.ca.issue("/CN=user", kYear));
  TransferOptions options;
  options.parallel_streams = 2;
  bool done = false;
  copier.striped_get({"gsiftp://s1:2811/pool/big", "gsiftp://s2:2811/pool/big",
                      "gsiftp://s3:2811/pool/big"},
                     "/local/big", f.pools[0].get(), options,
                     [&](Result<TransferResult> r) {
                       done = true;
                       ASSERT_TRUE(r.is_ok()) << r.status().to_string();
                       EXPECT_EQ(r->bytes, size);
                       EXPECT_EQ(r->content_seed, 0xccu);
                       EXPECT_EQ(r->crc, crc32_synthetic(0xcc, 0, size));
                       EXPECT_EQ(r->streams, 6);
                     });
  f.simulator.run_until(600 * kSecond);
  ASSERT_TRUE(done);
  const auto assembled = f.pools[0]->peek("/local/big");
  ASSERT_TRUE(assembled.is_ok());
  EXPECT_EQ(assembled->size, size);
  EXPECT_EQ(assembled->content_seed, 0xccu);
}

TEST(UrlCopy, StripedGetDetectsDivergentSources) {
  StarFixture f({"dst", "s1", "s2"});
  (void)f.pools[1]->add_file("/pool/big", 2 * kMiB, 0x11, 0);
  (void)f.pools[2]->add_file("/pool/big", 2 * kMiB, 0x22, 0);  // different!
  UrlCopy copier(f.network, *f.stacks[0], f.ca,
                 f.ca.issue("/CN=user", kYear));
  Status status = Status::ok();
  copier.striped_get(
      {"gsiftp://s1:2811/pool/big", "gsiftp://s2:2811/pool/big"},
      "/local/big", f.pools[0].get(), TransferOptions{},
      [&](Result<TransferResult> r) { status = r.status(); });
  f.simulator.run_until(600 * kSecond);
  EXPECT_EQ(status.code(), ErrorCode::kCorrupted);
  EXPECT_FALSE(f.pools[0]->contains("/local/big"));
}

TEST(UrlCopy, StripedGetFasterThanSingleSourceWhenSourceLimited) {
  // Each source uplink is 10 Mbit/s; striping over three sources should
  // roughly triple the single-source rate.
  sim::Simulator simulator;
  net::Network network(simulator);
  std::vector<net::GridSiteLink> links;
  for (const char* name : {"dst", "s1", "s2", "s3"}) {
    net::GridSiteLink link;
    link.site_name = name;
    link.wan.wan_bandwidth = name[0] == 'd' ? 155 * kMbps : 10 * kMbps;
    links.push_back(link);
  }
  auto topo = net::make_grid_topology(network, links);
  security::CertificateAuthority ca("TestCA");
  std::vector<std::unique_ptr<net::TcpStack>> stacks;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::vector<std::unique_ptr<storage::DiskPool>> pools;
  std::vector<std::unique_ptr<FtpServer>> servers;
  for (std::size_t i = 0; i < 4; ++i) {
    stacks.push_back(std::make_unique<net::TcpStack>(simulator, *topo.hosts[i]));
    disks.push_back(std::make_unique<storage::Disk>(simulator, storage::DiskConfig{}));
    pools.push_back(std::make_unique<storage::DiskPool>(100 * kGiB, *disks.back()));
    servers.push_back(std::make_unique<FtpServer>(
        *stacks.back(), *pools.back(), ca,
        ca.issue("/CN=" + std::string(links[i].site_name), kYear)));
    ASSERT_TRUE(servers.back()->start().is_ok());
  }
  const Bytes size = 8 * kMiB;
  for (std::size_t i : {1u, 2u, 3u}) {
    (void)pools[i]->add_file("/pool/big", size, 9, 0);
  }
  UrlCopy copier(network, *stacks[0], ca, ca.issue("/CN=user", kYear));
  TransferOptions options;
  options.tcp_buffer = 1 * kMiB;

  double single = 0, striped = 0;
  copier.copy_to_local("gsiftp://s1:2811/pool/big", "/one", *pools[0],
                       options, [&](Result<TransferResult> r) {
                         if (r.is_ok()) single = r->mbps;
                       });
  simulator.run_until(simulator.now() + 600 * kSecond);
  copier.striped_get({"gsiftp://s1:2811/pool/big", "gsiftp://s2:2811/pool/big",
                      "gsiftp://s3:2811/pool/big"},
                     "/striped", pools[0].get(), options,
                     [&](Result<TransferResult> r) {
                       if (r.is_ok()) striped = r->mbps;
                     });
  simulator.run_until(simulator.now() + 600 * kSecond);
  ASSERT_GT(single, 0);
  ASSERT_GT(striped, 0);
  EXPECT_GT(striped, single * 1.5);
}

}  // namespace
}  // namespace gdmp::gridftp

namespace gdmp::core {
namespace {

std::vector<Uri> candidates(std::initializer_list<const char*> hosts) {
  std::vector<Uri> out;
  for (const char* host : hosts) {
    out.push_back(make_gsiftp_uri(host, "/pool/f"));
  }
  return out;
}

TEST(ReplicaSelection, FirstAlwaysPicksZero) {
  auto selector = first_replica_selector();
  EXPECT_EQ(selector(candidates({"a", "b", "c"})), 0u);
}

TEST(ReplicaSelection, RandomStaysInRange) {
  auto selector = random_replica_selector(7);
  const auto hosts = candidates({"a", "b", "c"});
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(selector(hosts), 3u);
  }
}

TEST(ReplicaSelection, RoundRobinCycles) {
  auto selector = round_robin_selector();
  const auto hosts = candidates({"a", "b", "c"});
  EXPECT_EQ(selector(hosts), 0u);
  EXPECT_EQ(selector(hosts), 1u);
  EXPECT_EQ(selector(hosts), 2u);
  EXPECT_EQ(selector(hosts), 0u);
}

TEST(ReplicaSelection, PreferredHostsWins) {
  auto selector = preferred_hosts_selector({"caltech", "cern"});
  EXPECT_EQ(selector(candidates({"cern", "caltech"})), 1u);
  EXPECT_EQ(selector(candidates({"cern", "slac"})), 0u);
  EXPECT_EQ(selector(candidates({"slac", "anl"})), 0u);  // fallback
}

TEST(ReplicaSelection, ThroughputHistoryProbesThenExploits) {
  ThroughputHistorySelector history;
  auto selector = history.selector();
  const auto hosts = candidates({"slow", "fast"});
  // Both unmeasured: probe round-robin.
  const auto first = selector(hosts);
  const auto second = selector(hosts);
  EXPECT_NE(first, second);
  history.record("slow", 5.0);
  history.record("fast", 25.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(hosts[selector(hosts)].host, "fast");
  }
  // A regression at "fast" flips the decision once the average crosses.
  for (int i = 0; i < 20; ++i) history.record("fast", 1.0);
  EXPECT_EQ(hosts[selector(hosts)].host, "slow");
  EXPECT_NEAR(history.estimate("slow"), 5.0, 1e-9);
}

}  // namespace
}  // namespace gdmp::core
