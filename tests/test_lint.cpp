// gdmp_lint self-test: the fixture files under tests/lint_fixtures/ each
// violate one rule in a known way; expected.txt is the golden finding list.
// Any rule regression — a missed violation, a spurious finding, a changed
// message — shows up as a golden diff.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace gdmp::lint {
namespace {

namespace fs = std::filesystem;

const fs::path kFixtureDir = GDMP_LINT_FIXTURE_DIR;

std::vector<std::string> fixture_files() {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(kFixtureDir)) {
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Formats findings with paths relative to the fixture dir, matching the
/// golden file.
std::vector<std::string> relative_findings(const std::vector<Finding>& all) {
  std::vector<std::string> lines;
  for (Finding f : all) {
    f.file = fs::path(f.file).filename().string();
    lines.push_back(format_finding(f));
  }
  return lines;
}

TEST(Lint, FixturesMatchGolden) {
  const auto findings = run_lint(fixture_files());
  const auto got = relative_findings(findings);

  std::ifstream golden(kFixtureDir / "expected.txt");
  ASSERT_TRUE(golden.is_open()) << "missing golden file expected.txt";
  std::vector<std::string> want;
  for (std::string line; std::getline(golden, line);) {
    if (!line.empty()) want.push_back(line);
  }

  EXPECT_EQ(got, want);
}

TEST(Lint, CleanFixtureHasNoFindings) {
  const auto findings = run_lint({(kFixtureDir / "clean.cpp").string()});
  for (const Finding& f : findings) {
    ADD_FAILURE() << "unexpected finding: " << format_finding(f);
  }
}

TEST(Lint, EveryRuleIsExercised) {
  // The fixture set must stay exhaustive: when a new rule is added to the
  // linter, a fixture (and golden entry) must be added with it.
  const auto findings = run_lint(fixture_files());
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  for (const char* rule :
       {"wallclock", "raw-random", "callback-lifetime", "shared-cycle",
        "naked-new", "naked-delete", "using-namespace-header",
        "missing-pragma-once", "bare-suppression", "unused-suppression"}) {
    EXPECT_TRUE(std::find(rules.begin(), rules.end(), rule) != rules.end())
        << "no fixture exercises rule: " << rule;
  }
}

TEST(Lint, UnreadablePathReportsIoError) {
  const auto findings =
      run_lint({(kFixtureDir / "does_not_exist.cpp").string()});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
}

TEST(Lint, DeterminismAllowlistExemptsBlessedFiles) {
  // The same content that fires raw-random in a fixture is legal inside
  // src/common/random.* — verify via the path-substring allowlist.
  std::ifstream in(kFixtureDir / "raw_random.cpp");
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();

  const FileScan scan = scan_source(buffer.str());
  std::vector<Finding> findings;
  LintOptions options;
  lint_file("src/common/random.cpp", scan, {}, options, findings);
  EXPECT_TRUE(findings.empty());

  findings.clear();
  lint_file("src/storage/disk.cpp", scan, {}, options, findings);
  EXPECT_FALSE(findings.empty());
}

}  // namespace
}  // namespace gdmp::lint
