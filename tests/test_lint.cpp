// gdmp_lint self-test: the fixture files under tests/lint_fixtures/ each
// violate one rule in a known way; expected.txt is the golden finding list.
// Any rule regression — a missed violation, a spurious finding, a changed
// message — shows up as a golden diff.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace gdmp::lint {
namespace {

namespace fs = std::filesystem;

const fs::path kFixtureDir = GDMP_LINT_FIXTURE_DIR;

std::vector<std::string> fixture_files() {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(kFixtureDir)) {
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Formats findings with paths relative to the fixture dir, matching the
/// golden file.
std::vector<std::string> relative_findings(const std::vector<Finding>& all) {
  std::vector<std::string> lines;
  for (Finding f : all) {
    f.file = fs::path(f.file).filename().string();
    lines.push_back(format_finding(f));
  }
  return lines;
}

TEST(Lint, FixturesMatchGolden) {
  const auto findings = run_lint(fixture_files());
  const auto got = relative_findings(findings);

  std::ifstream golden(kFixtureDir / "expected.txt");
  ASSERT_TRUE(golden.is_open()) << "missing golden file expected.txt";
  std::vector<std::string> want;
  for (std::string line; std::getline(golden, line);) {
    if (!line.empty()) want.push_back(line);
  }

  EXPECT_EQ(got, want);
}

TEST(Lint, CleanFixtureHasNoFindings) {
  const auto findings = run_lint({(kFixtureDir / "clean.cpp").string()});
  for (const Finding& f : findings) {
    ADD_FAILURE() << "unexpected finding: " << format_finding(f);
  }
}

TEST(Lint, EveryRuleIsExercised) {
  // The fixture set must stay exhaustive: when a new rule is added to the
  // linter, a fixture (and golden entry) must be added with it.
  const auto findings = run_lint(fixture_files());
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  for (const char* rule :
       {"wallclock", "raw-random", "callback-lifetime", "shared-cycle",
        "naked-new", "naked-delete", "using-namespace-header",
        "missing-pragma-once", "bare-suppression", "unused-suppression",
        "unordered-iteration", "unordered-float-accum"}) {
    EXPECT_TRUE(std::find(rules.begin(), rules.end(), rule) != rules.end())
        << "no fixture exercises rule: " << rule;
  }
}

// --------------------------------------------------- include-graph pass
//
// The graph/ subtree is a miniature three-layer architecture (layers.conf:
// base < mid < app, plus a `private _secret` pattern) whose sources violate
// every graph rule on purpose. It lives in a subdirectory so the flat
// golden test above never sees it.

std::vector<std::string> graph_fixture_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       fs::recursive_directory_iterator(kFixtureDir / "graph")) {
    if (entry.path().extension() == ".h" || entry.path().extension() == ".cpp") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

LintOptions graph_options() {
  LintOptions options;
  std::string error;
  const auto conf = (kFixtureDir / "graph" / "layers.conf").string();
  EXPECT_TRUE(load_layer_config(conf, options.layers, error)) << error;
  return options;
}

TEST(LintGraph, EveryGraphRuleIsExercised) {
  const auto findings = run_lint(graph_fixture_files(), graph_options());
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  for (const char* rule : {"upward-include", "include-cycle",
                           "private-include", "unknown-module",
                           "unused-include"}) {
    EXPECT_TRUE(std::find(rules.begin(), rules.end(), rule) != rules.end())
        << "no graph fixture exercises rule: " << rule;
  }
}

TEST(LintGraph, UpwardEdgeNamesTheViolatingInclude) {
  const auto findings = run_lint(graph_fixture_files(), graph_options());
  for (const Finding& f : findings) {
    if (f.rule != "upward-include") continue;
    EXPECT_TRUE(f.file.ends_with("base/clock.h")) << f.file;
    EXPECT_NE(f.message.find("mid"), std::string::npos) << f.message;
    return;
  }
  FAIL() << "no upward-include finding";
}

TEST(LintGraph, CycleReportsBaseMidScc) {
  const auto findings = run_lint(graph_fixture_files(), graph_options());
  for (const Finding& f : findings) {
    if (f.rule != "include-cycle") continue;
    EXPECT_NE(f.message.find("base"), std::string::npos) << f.message;
    EXPECT_NE(f.message.find("mid"), std::string::npos) << f.message;
    return;
  }
  FAIL() << "no include-cycle finding";
}

TEST(LintGraph, PrivateHeaderFlaggedByStemAndByConfigPattern) {
  const auto findings = run_lint(graph_fixture_files(), graph_options());
  bool by_stem = false, by_pattern = false;
  for (const Finding& f : findings) {
    if (f.rule != "private-include") continue;
    if (f.message.find("policy_internal.h") != std::string::npos)
      by_stem = true;
    if (f.message.find("knobs_secret.h") != std::string::npos)
      by_pattern = true;
  }
  EXPECT_TRUE(by_stem) << "built-in _internal stem not flagged";
  EXPECT_TRUE(by_pattern) << "layers.conf `private` pattern not flagged";
}

TEST(LintGraph, KeepIncludeSuppressesOnlyTheAnnotatedInclude) {
  // tool.cpp has two never-used includes; the rogue one carries a justified
  // keep-include, so exactly the clock.h one must be reported.
  const auto findings = run_lint(graph_fixture_files(), graph_options());
  std::vector<std::string> unused;
  for (const Finding& f : findings) {
    if (f.rule == "unused-include") unused.push_back(f.message);
  }
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_NE(unused[0].find("base/clock.h"), std::string::npos) << unused[0];
}

TEST(LintGraph, GraphExtractionAndDotExport) {
  const LintOptions options = graph_options();
  IncludeGraph graph;
  std::vector<Finding> ignored = run_lint(graph_fixture_files(), options, &graph);
  const std::vector<std::string> want_modules = {"app", "base", "mid",
                                                 "rogue"};
  EXPECT_EQ(graph.modules, want_modules);
  EXPECT_GT(graph.file_edge_count, 0);

  const std::string dot = graph_to_dot(graph, options.layers);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"base\" -> \"mid\""), std::string::npos) << dot;
}

TEST(Lint, UnreadablePathReportsIoError) {
  const auto findings =
      run_lint({(kFixtureDir / "does_not_exist.cpp").string()});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
}

TEST(Lint, DeterminismAllowlistExemptsBlessedFiles) {
  // The same content that fires raw-random in a fixture is legal inside
  // src/common/random.* — verify via the path-substring allowlist.
  std::ifstream in(kFixtureDir / "raw_random.cpp");
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();

  const FileScan scan = scan_source(buffer.str());
  std::vector<Finding> findings;
  LintOptions options;
  lint_file("src/common/random.cpp", scan, {}, options, findings);
  EXPECT_TRUE(findings.empty());

  findings.clear();
  lint_file("src/storage/disk.cpp", scan, {}, options, findings);
  EXPECT_FALSE(findings.empty());
}

}  // namespace
}  // namespace gdmp::lint
