// Tests for the GDMP core: catalog service, storage manager, file-type
// plug-ins, publish/subscribe/replicate on a two-site grid.
#include <gtest/gtest.h>

#include "testbed/grid.h"
#include "testbed/workload.h"

namespace gdmp::core {
namespace {

using testbed::Grid;
using testbed::GridConfig;
using testbed::Site;
using testbed::two_site_config;

struct TwoSiteFixture {
  Grid grid;

  explicit TwoSiteFixture(GridConfig config = two_site_config())
      : grid(customize(std::move(config))) {
    EXPECT_TRUE(grid.start().is_ok());
  }

  static GridConfig customize(GridConfig config) {
    config.event_count = 20000;
    for (auto& spec : config.sites) {
      spec.site.gdmp.transfer.parallel_streams = 4;
      spec.site.gdmp.transfer.tcp_buffer = 1 * kMiB;
    }
    return config;
  }

  Site& producer() { return grid.site(0); }
  Site& consumer() { return grid.site(1); }

  /// Produce + publish a run at the producer; returns the LFNs.
  std::vector<LogicalFileName> publish_run(std::int64_t events = 4000) {
    testbed::ProductionConfig production;
    production.tier = objstore::Tier::kAod;
    production.event_hi = events;
    auto files = testbed::produce_run(producer(), production);
    std::vector<LogicalFileName> lfns;
    for (const auto& file : files) lfns.push_back(file.lfn);
    bool published = false;
    producer().gdmp().publish(files, [&](Status s) {
      ASSERT_TRUE(s.is_ok()) << s.to_string();
      published = true;
    });
    grid.run_until(grid.simulator().now() + 120 * kSecond);
    EXPECT_TRUE(published);
    return lfns;
  }
};

TEST(GdmpCatalogService, PublishLookupRoundTrip) {
  TwoSiteFixture f;
  (void)f.producer().pool().add_file("/pool/lfn://cms/x", 1 * kMiB, 7, 0);
  PublishedFile file;
  file.lfn = "lfn://cms/x";
  bool published = false;
  f.producer().gdmp().publish({file}, [&](Status s) {
    ASSERT_TRUE(s.is_ok()) << s.to_string();
    published = true;
  });
  f.grid.run_until(60 * kSecond);
  ASSERT_TRUE(published);

  bool looked_up = false;
  f.consumer().gdmp_server().catalog().lookup(
      "cms", "lfn://cms/x", [&](Result<ReplicaInfo> info) {
        looked_up = true;
        ASSERT_TRUE(info.is_ok()) << info.status().to_string();
        EXPECT_EQ(info->attributes.size, 1 * kMiB);
        ASSERT_EQ(info->locations.size(), 1u);
        EXPECT_EQ(info->locations[0],
                  "gsiftp://cern:2811/pool/lfn://cms/x");
      });
  f.grid.run_until(120 * kSecond);
  EXPECT_TRUE(looked_up);
}

TEST(GdmpCatalogService, DuplicatePublishRejected) {
  TwoSiteFixture f;
  (void)f.producer().pool().add_file("/pool/lfn://cms/dup", 1024, 7, 0);
  PublishedFile file;
  file.lfn = "lfn://cms/dup";
  Status second = Status::ok();
  f.producer().gdmp().publish({file}, [&](Status) {});
  f.grid.run_until(60 * kSecond);
  f.producer().gdmp().publish({file}, [&](Status s) { second = s; });
  f.grid.run_until(120 * kSecond);
  EXPECT_EQ(second.code(), ErrorCode::kAlreadyExists);
}

TEST(GdmpCatalogService, SearchWithFilter) {
  TwoSiteFixture f;
  for (int i = 0; i < 5; ++i) {
    (void)f.producer().pool().add_file("/pool/lfn://cms/s" + std::to_string(i),
                                       (i + 1) * 1000, 7, 0);
    PublishedFile file;
    file.lfn = "lfn://cms/s" + std::to_string(i);
    f.producer().gdmp().publish({file}, [](Status) {});
  }
  f.grid.run_until(60 * kSecond);
  std::size_t matches = 0;
  f.consumer().gdmp_server().catalog().search(
      "cms", "(size>=3000)", [&](Result<std::vector<ReplicaInfo>> result) {
        ASSERT_TRUE(result.is_ok());
        matches = result->size();
      });
  f.grid.run_until(120 * kSecond);
  EXPECT_EQ(matches, 3u);
}

TEST(Gdmp, PublishNotifiesSubscribers) {
  TwoSiteFixture f;
  bool subscribed = false;
  f.consumer().gdmp().subscribe(f.producer().host().id(), 2000,
                                [&](Status s) { subscribed = s.is_ok(); });
  f.grid.run_until(30 * kSecond);
  ASSERT_TRUE(subscribed);
  EXPECT_EQ(f.producer().gdmp_server().subscribers().size(), 1u);

  std::vector<std::string> notified;
  f.consumer().gdmp_server().on_notification =
      [&](const std::string& from, const PublishedFile& file) {
        EXPECT_EQ(from, "cern");
        notified.push_back(file.lfn);
      };
  const auto lfns = f.publish_run(2000);
  f.grid.run_until(f.grid.simulator().now() + 60 * kSecond);
  EXPECT_EQ(notified.size(), lfns.size());
  EXPECT_GT(f.producer().gdmp_server().stats().notifications_sent, 0);
}

TEST(Gdmp, ReplicateMovesFileAndRegistersReplica) {
  TwoSiteFixture f;
  const auto lfns = f.publish_run(2000);
  ASSERT_FALSE(lfns.empty());
  bool replicated = false;
  f.consumer().gdmp().get_file(
      lfns[0], [&](Result<gridftp::TransferResult> result) {
        replicated = true;
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        EXPECT_GT(result->bytes, 0);
      });
  f.grid.run_until(f.grid.simulator().now() + 600 * kSecond);
  ASSERT_TRUE(replicated);
  // File is on the consumer's disk, attached to its federation, and the
  // catalog now lists both locations.
  const std::string local = f.consumer().gdmp_server().local_path_for(lfns[0]);
  EXPECT_TRUE(f.consumer().pool().contains(local));
  EXPECT_TRUE(f.consumer().federation()->is_attached(local));
  std::size_t locations = 0;
  f.consumer().gdmp_server().catalog().lookup(
      "cms", lfns[0], [&](Result<ReplicaInfo> info) {
        ASSERT_TRUE(info.is_ok());
        locations = info->locations.size();
      });
  f.grid.run_until(f.grid.simulator().now() + 60 * kSecond);
  EXPECT_EQ(locations, 2u);
}

TEST(Gdmp, ReplicateUnknownFileFails) {
  TwoSiteFixture f;
  Status status = Status::ok();
  f.consumer().gdmp().get_file(
      "lfn://cms/ghost",
      [&](Result<gridftp::TransferResult> r) { status = r.status(); });
  f.grid.run_until(120 * kSecond);
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST(Gdmp, AutoReplicationOnNotify) {
  GridConfig config = two_site_config();
  config.sites[1].site.gdmp.auto_replicate_on_notify = true;
  TwoSiteFixture f(config);
  bool subscribed = false;
  f.consumer().gdmp().subscribe(f.producer().host().id(), 2000,
                                [&](Status s) { subscribed = s.is_ok(); });
  f.grid.run_until(30 * kSecond);
  ASSERT_TRUE(subscribed);
  const auto lfns = f.publish_run(2000);
  f.grid.run_until(f.grid.simulator().now() + 1800 * kSecond);
  for (const auto& lfn : lfns) {
    EXPECT_TRUE(f.consumer().pool().contains(
        f.consumer().gdmp_server().local_path_for(lfn)))
        << lfn;
  }
  EXPECT_EQ(f.consumer().gdmp_server().stats().files_replicated,
            static_cast<std::int64_t>(lfns.size()));
}

TEST(Gdmp, GetFilesReplicatesBatch) {
  TwoSiteFixture f;
  const auto lfns = f.publish_run(4000);
  ASSERT_GE(lfns.size(), 2u);
  Status status = make_error(ErrorCode::kInternal, "pending");
  Bytes moved = 0;
  f.consumer().gdmp().get_files(lfns, [&](Status s, Bytes bytes) {
    status = s;
    moved = bytes;
  });
  f.grid.run_until(f.grid.simulator().now() + 3600 * kSecond);
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(moved, static_cast<Bytes>(lfns.size()) * 2000 * 10 * kKiB);
}

TEST(Gdmp, FailureRecoveryViaRemoteCatalog) {
  TwoSiteFixture f;
  const auto lfns = f.publish_run(4000);
  // Consumer has nothing; the remote export catalog reports all missing.
  std::vector<PublishedFile> missing;
  f.consumer().gdmp().missing_from(
      f.producer().host().id(), 2000,
      [&](Result<std::vector<PublishedFile>> result) {
        ASSERT_TRUE(result.is_ok());
        missing = std::move(*result);
      });
  f.grid.run_until(f.grid.simulator().now() + 60 * kSecond);
  EXPECT_EQ(missing.size(), lfns.size());

  // Replicate one, then the missing set shrinks by one.
  bool done = false;
  f.consumer().gdmp().get_file(
      lfns[0], [&](Result<gridftp::TransferResult>) { done = true; });
  f.grid.run_until(f.grid.simulator().now() + 600 * kSecond);
  ASSERT_TRUE(done);
  f.consumer().gdmp().missing_from(
      f.producer().host().id(), 2000,
      [&](Result<std::vector<PublishedFile>> result) {
        ASSERT_TRUE(result.is_ok());
        missing = std::move(*result);
      });
  f.grid.run_until(f.grid.simulator().now() + 60 * kSecond);
  EXPECT_EQ(missing.size(), lfns.size() - 1);
}

TEST(Gdmp, StagingFromMssOnDemand) {
  GridConfig config = two_site_config();
  config.sites[0].site.has_mss = true;
  // A pool big enough for the run but evictable afterwards.
  config.sites[0].site.pool_capacity = 1 * kGiB;
  TwoSiteFixture f(config);
  testbed::ProductionConfig production;
  production.tier = objstore::Tier::kAod;
  production.event_hi = 2000;
  production.archive_to_mss = true;
  auto files = testbed::produce_run(f.producer(), production);
  ASSERT_FALSE(files.empty());
  bool published = false;
  f.producer().gdmp().publish(files, [&](Status s) {
    published = s.is_ok();
  });
  f.grid.run_until(600 * kSecond);
  ASSERT_TRUE(published);

  // Evict the disk copy; the archive copy remains.
  const std::string path = files[0].local_path;
  ASSERT_TRUE(f.producer().mss()->in_archive(path));
  (void)f.producer().pool().remove(path);
  ASSERT_FALSE(f.producer().pool().contains(path));

  // Replication must trigger the stage and still succeed.
  bool replicated = false;
  f.consumer().gdmp().get_file(
      files[0].lfn, [&](Result<gridftp::TransferResult> result) {
        replicated = true;
        EXPECT_TRUE(result.is_ok()) << result.status().to_string();
      });
  f.grid.run_until(f.grid.simulator().now() + 1800 * kSecond);
  ASSERT_TRUE(replicated);
  EXPECT_GT(f.producer().gdmp_server().storage_manager().stats()
                .stage_requests,
            0);
}

TEST(Gdmp, AclBlocksUnauthorizedSubscribe) {
  TwoSiteFixture f;
  security::AccessControl acl;
  acl.allow(security::Operation::kSubscribe, "/O=Grid/OU=slac/*");
  f.producer().gdmp_server().set_access_control(std::move(acl));
  Status status = Status::ok();
  f.consumer().gdmp().subscribe(f.producer().host().id(), 2000,
                                [&](Status s) { status = s; });
  f.grid.run_until(60 * kSecond);
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
}

TEST(Gdmp, ObjectivityPostProcessAttachesOnConsumer) {
  TwoSiteFixture f;
  const auto lfns = f.publish_run(2000);
  bool done = false;
  f.consumer().gdmp().get_file(lfns[0],
                               [&](Result<gridftp::TransferResult> r) {
                                 done = r.is_ok();
                               });
  f.grid.run_until(f.grid.simulator().now() + 600 * kSecond);
  ASSERT_TRUE(done);
  // Objects from the replicated range file are now readable locally.
  objstore::PersistencyLayer& persistency = *f.consumer().persistency();
  Bytes read = 0;
  persistency.read_object(
      objstore::make_object_id(objstore::Tier::kAod, 100),
      [&](Result<Bytes> r) { read = r.value_or(0); });
  f.grid.run_until(f.grid.simulator().now() + 10 * kSecond);
  EXPECT_EQ(read, 10 * kKiB);
}

TEST(Gdmp, GeneratedLfnsAreUnique) {
  TwoSiteFixture f;
  auto& client = f.producer().gdmp();
  const auto a = client.generate_lfn("db");
  const auto b = client.generate_lfn("db");
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.find("cern") != std::string::npos);
}

TEST(StorageManagerUnit, CoalescesDuplicateStages) {
  TwoSiteFixture f;  // reuse grid wiring for a site with no MSS
  GridConfig config = two_site_config();
  config.sites[0].site.has_mss = true;
  Grid grid(TwoSiteFixture::customize(config));
  ASSERT_TRUE(grid.start().is_ok());
  Site& site = grid.site(0);
  // Archive a file, drop the disk copy, then trigger two parallel stages.
  (void)site.pool().add_file("/pool/f", 10 * kMiB, 3, 0);
  site.gdmp_server().storage_manager().archive("/pool/f", [](Status) {});
  grid.run_until(600 * kSecond);
  (void)site.pool().remove("/pool/f");
  int completions = 0;
  auto& manager = site.gdmp_server().storage_manager();
  manager.ensure_on_disk("/pool/f", [&](Result<storage::FileInfo> r) {
    ASSERT_TRUE(r.is_ok());
    ++completions;
  });
  manager.ensure_on_disk("/pool/f", [&](Result<storage::FileInfo> r) {
    ASSERT_TRUE(r.is_ok());
    ++completions;
  });
  grid.run_until(grid.simulator().now() + 600 * kSecond);
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(manager.stats().stages_coalesced, 1);
  EXPECT_EQ(site.mss()->stats().stages, 1);
}

}  // namespace
}  // namespace gdmp::core
