// Tests for the LDAP store, filters, and the replica catalog object model.
#include <gtest/gtest.h>

#include "catalog/filter.h"
#include "catalog/ldap_store.h"
#include "catalog/replica_catalog.h"

namespace gdmp::catalog {
namespace {

TEST(Filter, EmptyMatchesAll) {
  auto filter = Filter::parse("");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_TRUE(filter->matches({}));
}

TEST(Filter, EqualityAndWildcards) {
  auto filter = Filter::parse("(name=run*.db)");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_TRUE(filter->matches({{"name", {"run42.db"}}}));
  EXPECT_FALSE(filter->matches({{"name", {"x.db"}}}));
  EXPECT_FALSE(filter->matches({{"other", {"run42.db"}}}));
}

TEST(Filter, PresenceOperator) {
  auto filter = Filter::parse("(crc=*)");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_TRUE(filter->matches({{"crc", {"123"}}}));
  EXPECT_FALSE(filter->matches({{"size", {"5"}}}));
}

TEST(Filter, NumericComparisons) {
  auto filter = Filter::parse("(&(size>=1000)(size<=2000))");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_TRUE(filter->matches({{"size", {"1500"}}}));
  EXPECT_FALSE(filter->matches({{"size", {"999"}}}));
  EXPECT_FALSE(filter->matches({{"size", {"2001"}}}));
}

TEST(Filter, BooleanComposition) {
  auto filter =
      Filter::parse("(|(&(tier=aod)(size>=100))(!(objectclass=location)))");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_TRUE(filter->matches({{"tier", {"aod"}}, {"size", {"200"}}}));
  EXPECT_TRUE(filter->matches({{"objectclass", {"collection"}}}));
  EXPECT_FALSE(filter->matches(
      {{"objectclass", {"location"}}, {"tier", {"esd"}}, {"size", {"1"}}}));
}

TEST(Filter, MultiValuedAttributeMatchesAnyValue) {
  auto filter = Filter::parse("(filename=f2)");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_TRUE(filter->matches({{"filename", {"f1", "f2", "f3"}}}));
}

TEST(Filter, ParseErrors) {
  EXPECT_FALSE(Filter::parse("(name=x").is_ok());
  EXPECT_FALSE(Filter::parse("name=x)").is_ok());
  EXPECT_FALSE(Filter::parse("(&)").is_ok());
  EXPECT_FALSE(Filter::parse("(!(a=1)(b=2))").is_ok());
  EXPECT_FALSE(Filter::parse("(noop)").is_ok());
  EXPECT_FALSE(Filter::parse("(a=1)trailing").is_ok());
}

TEST(Filter, ToStringRoundTrips) {
  auto filter = Filter::parse("(&(a=1)(|(b=2)(c>=3)))");
  ASSERT_TRUE(filter.is_ok());
  auto reparsed = Filter::parse(filter->to_string());
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_TRUE(reparsed->matches({{"a", {"1"}}, {"b", {"2"}}}));
  EXPECT_FALSE(reparsed->matches({{"a", {"0"}}, {"b", {"2"}}}));
}

TEST(LdapStore, AddRequiresParent) {
  LdapStore store;
  EXPECT_TRUE(store.add("o=grid", {}).is_ok());
  EXPECT_TRUE(store.add("o=grid/ou=cern", {}).is_ok());
  EXPECT_EQ(store.add("o=grid/ou=anl/cn=x", {}).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(store.add("o=grid", {}).code(), ErrorCode::kAlreadyExists);
}

TEST(LdapStore, RemoveOnlyLeaves) {
  LdapStore store;
  (void)store.add("a", {});
  (void)store.add("a/b", {});
  EXPECT_EQ(store.remove("a").code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(store.remove("a/b").is_ok());
  EXPECT_TRUE(store.remove("a").is_ok());
}

TEST(LdapStore, AttributeValueOperations) {
  LdapStore store;
  (void)store.add("x", {});
  ASSERT_TRUE(store.add_value("x", "filename", "f1").is_ok());
  ASSERT_TRUE(store.add_value("x", "filename", "f2").is_ok());
  auto entry = store.get("x");
  ASSERT_TRUE(entry.is_ok());
  EXPECT_TRUE(entry->has_value("filename", "f1"));
  EXPECT_TRUE(store.remove_value("x", "filename", "f1").is_ok());
  EXPECT_EQ(store.remove_value("x", "filename", "f1").code(),
            ErrorCode::kNotFound);
  entry = store.get("x");
  EXPECT_FALSE(entry->has_value("filename", "f1"));
  EXPECT_TRUE(entry->has_value("filename", "f2"));
}

TEST(LdapStore, SearchScopes) {
  LdapStore store;
  (void)store.add("root", {{"objectclass", {"top"}}});
  (void)store.add("root/a", {{"objectclass", {"leaf"}}});
  (void)store.add("root/b", {{"objectclass", {"leaf"}}});
  (void)store.add("root/a/c", {{"objectclass", {"leaf"}}});

  const Filter all;
  auto base = store.search("root", SearchScope::kBase, all);
  ASSERT_TRUE(base.is_ok());
  EXPECT_EQ(base->size(), 1u);

  auto one = store.search("root", SearchScope::kOneLevel, all);
  ASSERT_TRUE(one.is_ok());
  EXPECT_EQ(one->size(), 2u);

  auto sub = store.search("root", SearchScope::kSubtree, all);
  ASSERT_TRUE(sub.is_ok());
  EXPECT_EQ(sub->size(), 4u);

  auto leaves = store.search("root", SearchScope::kSubtree,
                             Filter::equals("objectclass", "leaf"));
  ASSERT_TRUE(leaves.is_ok());
  EXPECT_EQ(leaves->size(), 3u);
  EXPECT_FALSE(store.search("nonexistent", SearchScope::kBase, all).is_ok());
}

TEST(ReplicaCatalog, RdnEscapingRoundTrips) {
  EXPECT_EQ(decode_rdn(encode_rdn("lfn://cms/run/1")), "lfn://cms/run/1");
  EXPECT_EQ(decode_rdn(encode_rdn("100%/2F weird")), "100%/2F weird");
}

struct CatalogFixture {
  ReplicaCatalog catalog{"test"};

  LogicalFileAttributes attrs(Bytes size = 1000) {
    LogicalFileAttributes a;
    a.size = size;
    a.modify_time = 5;
    a.content_seed = 42;
    a.crc = 0xabcd;
    return a;
  }
};

TEST(ReplicaCatalog, CollectionLifecycle) {
  CatalogFixture f;
  EXPECT_TRUE(f.catalog.create_collection("cms").is_ok());
  EXPECT_EQ(f.catalog.create_collection("cms").code(),
            ErrorCode::kAlreadyExists);
  auto collections = f.catalog.list_collections();
  ASSERT_TRUE(collections.is_ok());
  EXPECT_EQ(*collections, std::vector<std::string>{"cms"});
  EXPECT_TRUE(f.catalog.delete_collection("cms").is_ok());
  EXPECT_FALSE(f.catalog.collection_exists("cms"));
}

TEST(ReplicaCatalog, LookupReturnsAllPhysicalLocations) {
  CatalogFixture f;
  (void)f.catalog.create_collection("cms");
  (void)f.catalog.create_location("cms", "cern", "gsiftp://cern:2811/pool");
  (void)f.catalog.create_location("cms", "anl", "gsiftp://anl:2811/pool");
  ASSERT_TRUE(
      f.catalog.register_logical_file("cms", "lfn://cms/f1", f.attrs())
          .is_ok());
  ASSERT_TRUE(f.catalog.add_replica("cms", "cern", "lfn://cms/f1").is_ok());
  ASSERT_TRUE(f.catalog.add_replica("cms", "anl", "lfn://cms/f1").is_ok());

  auto locations = f.catalog.lookup("cms", "lfn://cms/f1");
  ASSERT_TRUE(locations.is_ok());
  ASSERT_EQ(locations->size(), 2u);
  EXPECT_NE(std::find(locations->begin(), locations->end(),
                      "gsiftp://cern:2811/pool/lfn://cms/f1"),
            locations->end());
}

TEST(ReplicaCatalog, GlobalNameUniqueness) {
  CatalogFixture f;
  (void)f.catalog.create_collection("cms");
  ASSERT_TRUE(
      f.catalog.register_logical_file("cms", "lfn://x", f.attrs()).is_ok());
  EXPECT_EQ(f.catalog.register_logical_file("cms", "lfn://x", f.attrs())
                .code(),
            ErrorCode::kAlreadyExists);
}

TEST(ReplicaCatalog, AttributesPreserved) {
  CatalogFixture f;
  (void)f.catalog.create_collection("cms");
  LogicalFileAttributes attrs = f.attrs(12345);
  attrs.extra["filetype"] = "objectivity";
  ASSERT_TRUE(
      f.catalog.register_logical_file("cms", "lfn://y", attrs).is_ok());
  auto loaded = f.catalog.attributes("cms", "lfn://y");
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded->size, 12345);
  EXPECT_EQ(loaded->content_seed, 42u);
  EXPECT_EQ(loaded->crc, 0xabcdu);
  EXPECT_EQ(loaded->extra.at("filetype"), "objectivity");
}

TEST(ReplicaCatalog, UnregisterRequiresNoReplicas) {
  CatalogFixture f;
  (void)f.catalog.create_collection("cms");
  (void)f.catalog.create_location("cms", "cern", "gsiftp://cern/pool");
  (void)f.catalog.register_logical_file("cms", "lfn://z", f.attrs());
  (void)f.catalog.add_replica("cms", "cern", "lfn://z");
  EXPECT_EQ(f.catalog.unregister_logical_file("cms", "lfn://z").code(),
            ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(f.catalog.remove_replica("cms", "cern", "lfn://z").is_ok());
  EXPECT_TRUE(f.catalog.unregister_logical_file("cms", "lfn://z").is_ok());
  EXPECT_FALSE(f.catalog.logical_file_exists("cms", "lfn://z"));
}

TEST(ReplicaCatalog, ReplicaRequiresRegisteredLogicalFile) {
  CatalogFixture f;
  (void)f.catalog.create_collection("cms");
  (void)f.catalog.create_location("cms", "cern", "gsiftp://cern/pool");
  EXPECT_EQ(f.catalog.add_replica("cms", "cern", "lfn://ghost").code(),
            ErrorCode::kNotFound);
}

TEST(ReplicaCatalog, DuplicateReplicaRejected) {
  CatalogFixture f;
  (void)f.catalog.create_collection("cms");
  (void)f.catalog.create_location("cms", "cern", "gsiftp://cern/pool");
  (void)f.catalog.register_logical_file("cms", "lfn://d", f.attrs());
  ASSERT_TRUE(f.catalog.add_replica("cms", "cern", "lfn://d").is_ok());
  EXPECT_EQ(f.catalog.add_replica("cms", "cern", "lfn://d").code(),
            ErrorCode::kAlreadyExists);
}

TEST(ReplicaCatalog, SearchByAttributeFilter) {
  CatalogFixture f;
  (void)f.catalog.create_collection("cms");
  for (int i = 0; i < 10; ++i) {
    LogicalFileAttributes attrs = f.attrs(1000 * (i + 1));
    attrs.extra["tier"] = i % 2 == 0 ? "aod" : "esd";
    (void)f.catalog.register_logical_file(
        "cms", "lfn://cms/f" + std::to_string(i), attrs);
  }
  auto filter = Filter::parse("(&(tier=aod)(size>=5000))");
  ASSERT_TRUE(filter.is_ok());
  auto matches = f.catalog.search("cms", *filter);
  ASSERT_TRUE(matches.is_ok());
  EXPECT_EQ(matches->size(), 3u);  // sizes 5000,7000,9000 with even index
}

TEST(ReplicaCatalog, ListCollectionAndLocation) {
  CatalogFixture f;
  (void)f.catalog.create_collection("cms");
  (void)f.catalog.create_location("cms", "cern", "gsiftp://cern/pool");
  (void)f.catalog.register_logical_file("cms", "lfn://a", f.attrs());
  (void)f.catalog.register_logical_file("cms", "lfn://b", f.attrs());
  (void)f.catalog.add_replica("cms", "cern", "lfn://a");
  auto collection = f.catalog.list_collection("cms");
  ASSERT_TRUE(collection.is_ok());
  EXPECT_EQ(collection->size(), 2u);
  auto location = f.catalog.list_location("cms", "cern");
  ASSERT_TRUE(location.is_ok());
  EXPECT_EQ(*location, std::vector<LogicalFileName>{"lfn://a"});
}

TEST(ReplicaCatalog, DeleteLocationRequiresEmpty) {
  CatalogFixture f;
  (void)f.catalog.create_collection("cms");
  (void)f.catalog.create_location("cms", "cern", "gsiftp://cern/pool");
  (void)f.catalog.register_logical_file("cms", "lfn://a", f.attrs());
  (void)f.catalog.add_replica("cms", "cern", "lfn://a");
  EXPECT_EQ(f.catalog.delete_location("cms", "cern").code(),
            ErrorCode::kFailedPrecondition);
  (void)f.catalog.remove_replica("cms", "cern", "lfn://a");
  EXPECT_TRUE(f.catalog.delete_location("cms", "cern").is_ok());
}

}  // namespace
}  // namespace gdmp::catalog
