// Unit tests for the common utility layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/det_hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/types.h"
#include "common/uri.h"

namespace gdmp {
namespace {

TEST(Types, TransmissionDelayMatchesArithmetic) {
  // 1 MB at 8 Mbit/s = 1.048576 s.
  const SimDuration d = transmission_delay(1 * kMiB, 8 * kMbps);
  EXPECT_NEAR(to_seconds(d), 1.048576, 1e-9);
}

TEST(Types, TransmissionDelayNeverZeroForPositiveBytes) {
  EXPECT_GE(transmission_delay(1, 100 * kGbps), 1);
}

TEST(Types, ThroughputInverseOfDelay) {
  const Bytes size = 25 * kMiB;
  const SimDuration d = transmission_delay(size, 45 * kMbps);
  EXPECT_NEAR(throughput_mbps(size, d), 45.0, 0.01);
}

TEST(Result, OkStatusIsTruthy) {
  const Status status = Status::ok();
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(Result, ErrorCarriesCodeAndMessage) {
  const Status status = make_error(ErrorCode::kNotFound, "no such file");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.to_string(), "NOT_FOUND: no such file");
}

TEST(Result, ValueAccessAndConversion) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad = make_error(ErrorCode::kTimedOut, "slow");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.code(), ErrorCode::kTimedOut);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ZipfHeadHeavierThanTail) {
  Rng rng(13);
  int head = 0, tail = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto rank = rng.zipf(1000, 1.0);
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, 1000);
    if (rank < 10) ++head;
    if (rank >= 990) ++tail;
  }
  EXPECT_GT(head, tail * 3);
}

TEST(Crc32, MatchesKnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  Crc32 crc;
  crc.update(std::span(data, 4));
  crc.update(std::span(data + 4, 5));
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32, SyntheticDependsOnSeedOffsetAndLength) {
  const auto base = crc32_synthetic(1, 0, 10000);
  EXPECT_NE(base, crc32_synthetic(2, 0, 10000));
  EXPECT_NE(base, crc32_synthetic(1, 4096, 10000));
  EXPECT_NE(base, crc32_synthetic(1, 0, 10001));
  EXPECT_EQ(base, crc32_synthetic(1, 0, 10000));
}

TEST(Crc32, GoldenVectors) {
  // Pin the slice-by-8 path against independently known CRC-32 values so a
  // table or combination bug cannot slip through as "self-consistent".
  const auto of_string = [](std::string_view s) {
    return crc32(std::span(reinterpret_cast<const std::uint8_t*>(s.data()),
                           s.size()));
  };
  EXPECT_EQ(of_string(""), 0x00000000u);
  EXPECT_EQ(of_string("a"), 0xE8B7BE43u);
  EXPECT_EQ(of_string("abc"), 0x352441C2u);
  EXPECT_EQ(of_string("message digest"), 0x20159D7Fu);
  EXPECT_EQ(of_string("abcdefghijklmnopqrstuvwxyz"), 0x4C2750BDu);
  EXPECT_EQ(of_string("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
                      "0123456789"),
            0x1FC2E6D2u);
  // 256 zero bytes (exercises several full 8-byte strides).
  const std::vector<std::uint8_t> zeros(256, 0);
  EXPECT_EQ(crc32(zeros), 0x0D968558u);
}

TEST(Crc32, SliceBy8MatchesBytewiseReferenceOnAllSplits) {
  // Reference per-byte implementation, independent of the production tables.
  const auto reference = [](std::span<const std::uint8_t> data) {
    std::uint32_t c = 0xffffffffu;
    for (const std::uint8_t byte : data) {
      c ^= byte;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
    }
    return c ^ 0xffffffffu;
  };
  std::vector<std::uint8_t> data(1027);  // odd length: strided body + tail
  std::uint32_t x = 0x12345678u;
  for (auto& byte : data) {
    x = x * 1664525u + 1013904223u;  // deterministic LCG fill
    byte = static_cast<std::uint8_t>(x >> 24);
  }
  EXPECT_EQ(crc32(data), reference(data));
  // Every chunking must agree: misaligned heads force the bytewise
  // prologue/epilogue around the 8-byte strides.
  for (const std::size_t split : {1u, 3u, 7u, 8u, 9u, 63u, 512u, 1026u}) {
    Crc32 crc;
    crc.update(std::span(data.data(), split));
    crc.update(std::span(data.data() + split, data.size() - split));
    EXPECT_EQ(crc.value(), reference(data)) << "split=" << split;
  }
}

TEST(Crc32, SyntheticIncrementalConsistency) {
  Crc32 a;
  a.update_synthetic(99, 0, 8192);
  a.update_synthetic(99, 8192, 8192);
  Crc32 b;
  b.update_synthetic(99, 0, 8192);
  b.update_synthetic(99, 8192, 8192);
  EXPECT_EQ(a.value(), b.value());
}

TEST(Uri, ParsesFullGsiftpUrl) {
  auto uri = parse_uri("gsiftp://cern.ch:2811/pool/run1.db");
  ASSERT_TRUE(uri.is_ok());
  EXPECT_EQ(uri->scheme, "gsiftp");
  EXPECT_EQ(uri->host, "cern.ch");
  EXPECT_EQ(uri->port, 2811);
  EXPECT_EQ(uri->path, "/pool/run1.db");
  EXPECT_EQ(uri->to_string(), "gsiftp://cern.ch:2811/pool/run1.db");
}

TEST(Uri, DefaultPortAndRootPath) {
  auto uri = parse_uri("mss://fnal");
  ASSERT_TRUE(uri.is_ok());
  EXPECT_EQ(uri->port, 0);
  EXPECT_EQ(uri->path, "/");
}

TEST(Uri, RejectsMalformedInput) {
  EXPECT_FALSE(parse_uri("not-a-url").is_ok());
  EXPECT_FALSE(parse_uri("://host/x").is_ok());
  EXPECT_FALSE(parse_uri("ftp://:2811/x").is_ok());
  EXPECT_FALSE(parse_uri("ftp://host:99999/x").is_ok());
}

TEST(Uri, MakeGsiftpNormalizesPath) {
  const Uri uri = make_gsiftp_uri("anl", "pool/f");
  EXPECT_EQ(uri.path, "/pool/f");
  EXPECT_EQ(uri.port, 2811);
}

TEST(StringUtil, SplitAndJoinRoundTrip) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(StringUtil, WildcardMatching) {
  EXPECT_TRUE(wildcard_match("*", "anything"));
  EXPECT_TRUE(wildcard_match("run*.db", "run42.db"));
  EXPECT_TRUE(wildcard_match("r?n", "run"));
  EXPECT_FALSE(wildcard_match("run*.db", "run42.dbx"));
  EXPECT_TRUE(wildcard_match("/O=Grid/*", "/O=Grid/OU=cern/CN=alice"));
  EXPECT_FALSE(wildcard_match("", "x"));
  EXPECT_TRUE(wildcard_match("", ""));
}

TEST(StringUtil, FormatBytesHumanReadable) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(25 * 1024 * 1024), "25.0 MiB");
}

TEST(Stats, RunningStatsMoments) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(Stats, PercentilesNearestRank) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
  EXPECT_NEAR(p.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(p.quantile(0.9), 90.0, 1.0);
}

TEST(Stats, PercentilesInterleavedAddAndQuantile) {
  Percentiles p;
  p.add(30.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 30.0);
  // Adding after a quantile() must invalidate the lazy sort: the new
  // maximum has to be visible, not left out-of-place past the sorted run.
  p.add(50.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 50.0);
  p.add(1.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 50.0);
}

TEST(Logging, PerComponentLevelOverride) {
  Logger& logger = Logger::global();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kOff);
  logger.set_component_level("gridftp", LogLevel::kDebug);

  EXPECT_TRUE(logger.enabled(LogLevel::kDebug, "gridftp"));
  EXPECT_TRUE(logger.enabled(LogLevel::kDebug, "gridftp.client"));
  EXPECT_FALSE(logger.enabled(LogLevel::kTrace, "gridftp"));
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug, "gridftpx"));
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug, "sched"));

  logger.clear_component_levels();
  logger.set_level(saved);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug, "gridftp"));
}

TEST(Stats, TimeSeriesWindowMean) {
  TimeSeries series;
  series.add(1 * kSecond, 10.0);
  series.add(2 * kSecond, 20.0);
  series.add(3 * kSecond, 30.0);
  EXPECT_DOUBLE_EQ(series.mean_in_window(2 * kSecond, 3 * kSecond), 25.0);
  EXPECT_DOUBLE_EQ(series.mean_in_window(10 * kSecond, 20 * kSecond), 0.0);
}

TEST(DetHash, SeedZeroIsIdentityOverStdHash) {
  common::set_hash_seed(0);
  EXPECT_EQ(common::SeededHash<std::string>{}("gdmp"),
            std::hash<std::string>{}("gdmp"));
}

TEST(DetHash, DifferentSeedsPerturbIterationOrder) {
  // The determinism harness relies on GDMP_HASH_SEED actually scrambling
  // bucket layout: two seeds must yield the same contents in a different
  // iteration order, or determinism_check --hash-perturb proves nothing.
  const auto order_under = [](std::size_t seed) {
    common::set_hash_seed(seed);
    common::UnorderedMap<std::string, int> map;
    for (int i = 0; i < 64; ++i) map["lfn-" + std::to_string(i)] = i;
    std::vector<std::string> order;
    for (const auto& [key, value] : map) order.push_back(key);
    return order;
  };
  const auto first = order_under(1);
  const auto second = order_under(2654435769u);
  common::set_hash_seed(0);  // restore baseline for the rest of the suite

  auto sorted_first = first, sorted_second = second;
  std::sort(sorted_first.begin(), sorted_first.end());
  std::sort(sorted_second.begin(), sorted_second.end());
  EXPECT_EQ(sorted_first, sorted_second);  // same 64 keys...
  EXPECT_NE(first, second);                // ...visited in different order
}

// ------------------------------------------------------------------ logging

TEST(Logger, SimTimePrefixAndComponentOverride) {
  Logger& logger = Logger::global();
  std::vector<std::string> lines;
  logger.set_sink(
      [&](LogLevel, std::string_view line) { lines.emplace_back(line); });
  logger.set_clock([] { return SimTime{12 * kSecond + 500 * kMillisecond}; });
  logger.set_level(LogLevel::kWarn);
  // Per-component override covers dotted children without opening the
  // global floodgates.
  logger.set_component_level("gridftp", LogLevel::kDebug);

  GDMP_DEBUG("gridftp.client", "window update");
  GDMP_DEBUG("sched", "suppressed by the global level");
  GDMP_WARN("sched", "queue deep");

  ASSERT_EQ(lines.size(), 2u);
  // The prefix is simulated time in the fixed "[t=12.500s]" form — never
  // wallclock (gdmp_lint's wallclock rule bans the strftime family).
  EXPECT_EQ(lines[0], "[t=12.500s] gridftp.client: window update");
  EXPECT_EQ(lines[1], "[t=12.500s] sched: queue deep");

  // Without a clock there is no time prefix.
  logger.set_clock({});
  GDMP_WARN("sched", "bare");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "sched: bare");

  logger.clear_component_levels();
  logger.set_level(LogLevel::kOff);
  logger.set_sink(nullptr);
}

}  // namespace
}  // namespace gdmp
