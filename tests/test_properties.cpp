// Property-based tests: randomized sweeps over module invariants.
#include <gtest/gtest.h>

#include <map>

#include "catalog/filter.h"
#include "common/crc32.h"
#include "common/random.h"
#include "gridftp/block_stream.h"
#include "net/tcp.h"
#include "net/topology.h"
#include "rpc/message.h"
#include "storage/disk_pool.h"

namespace gdmp {
namespace {

// ---------------------------------------------------------------- RangeSet

// Property: RangeSet behaves exactly like a reference bitset under random
// insertions, for total bytes, coverage and missing-range queries.
class RangeSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangeSetProperty, MatchesReferenceBitset) {
  Rng rng(GetParam());
  constexpr Bytes kUniverse = 2048;
  gridftp::RangeSet set;
  std::vector<bool> reference(kUniverse, false);
  for (int step = 0; step < 100; ++step) {
    const Bytes offset = rng.uniform_int(0, kUniverse - 1);
    const Bytes length = rng.uniform_int(1, kUniverse - offset);
    set.add(offset, length);
    for (Bytes i = offset; i < offset + length; ++i) {
      reference[static_cast<std::size_t>(i)] = true;
    }

    Bytes expected_total = 0;
    for (const bool bit : reference) expected_total += bit ? 1 : 0;
    ASSERT_EQ(set.total_bytes(), expected_total);

    // Ranges are sorted, disjoint and non-adjacent.
    const auto& ranges = set.ranges();
    for (std::size_t i = 1; i < ranges.size(); ++i) {
      ASSERT_GT(ranges[i].offset,
                ranges[i - 1].offset + ranges[i - 1].length);
    }

    // Spot-check coverage and missing on a random window.
    const Bytes qoff = rng.uniform_int(0, kUniverse - 1);
    const Bytes qlen = rng.uniform_int(1, kUniverse - qoff);
    bool expected_covered = true;
    for (Bytes i = qoff; i < qoff + qlen; ++i) {
      if (!reference[static_cast<std::size_t>(i)]) {
        expected_covered = false;
        break;
      }
    }
    ASSERT_EQ(set.covers(qoff, qlen), expected_covered);
    Bytes missing_bytes = 0;
    for (const auto& hole : set.missing_within(qoff, qlen)) {
      for (Bytes i = hole.offset; i < hole.offset + hole.length; ++i) {
        ASSERT_FALSE(reference[static_cast<std::size_t>(i)]);
        ++missing_bytes;
      }
    }
    Bytes expected_missing = 0;
    for (Bytes i = qoff; i < qoff + qlen; ++i) {
      if (!reference[static_cast<std::size_t>(i)]) ++expected_missing;
    }
    ASSERT_EQ(missing_bytes, expected_missing);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeSetProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------------------ serialization

// Property: any sequence of writer operations reads back identically.
class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecProperty, WriterReaderRoundTrip) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    rpc::Writer w;
    struct Op {
      int kind;
      std::uint64_t value;
      std::string text;
    };
    std::vector<Op> ops;
    const int n = static_cast<int>(rng.uniform_int(1, 20));
    for (int i = 0; i < n; ++i) {
      Op op;
      op.kind = static_cast<int>(rng.uniform_int(0, 4));
      op.value = rng.next();
      const auto len = rng.uniform_int(0, 32);
      for (std::int64_t c = 0; c < len; ++c) {
        op.text += static_cast<char>('a' + rng.uniform_int(0, 25));
      }
      switch (op.kind) {
        case 0: w.u8(static_cast<std::uint8_t>(op.value)); break;
        case 1: w.u32(static_cast<std::uint32_t>(op.value)); break;
        case 2: w.u64(op.value); break;
        case 3: w.i64(static_cast<std::int64_t>(op.value)); break;
        case 4: w.str(op.text); break;
      }
      ops.push_back(std::move(op));
    }
    const auto buffer = w.take();
    rpc::Reader r(buffer);
    for (const Op& op : ops) {
      switch (op.kind) {
        case 0:
          ASSERT_EQ(r.u8(), static_cast<std::uint8_t>(op.value));
          break;
        case 1:
          ASSERT_EQ(r.u32(), static_cast<std::uint32_t>(op.value));
          break;
        case 2: ASSERT_EQ(r.u64(), op.value); break;
        case 3:
          ASSERT_EQ(r.i64(), static_cast<std::int64_t>(op.value));
          break;
        case 4: ASSERT_EQ(r.str(), op.text); break;
      }
    }
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.at_end());
  }
}

TEST_P(CodecProperty, FrameDecoderHandlesArbitraryFragmentation) {
  Rng rng(GetParam());
  std::vector<rpc::RpcMessage> sent;
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 10; ++i) {
    rpc::RpcMessage m;
    m.kind = rpc::MessageKind::kRequest;
    m.request_id = rng.next();
    m.method = "m" + std::to_string(i);
    const auto payload_len = rng.uniform_int(0, 200);
    for (std::int64_t b = 0; b < payload_len; ++b) {
      m.payload.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    const auto frame = rpc::encode_frame(m);
    wire.insert(wire.end(), frame.begin(), frame.end());
    sent.push_back(std::move(m));
  }
  rpc::FrameDecoder decoder;
  std::vector<rpc::RpcMessage> received;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t chunk = static_cast<std::size_t>(
        rng.uniform_int(1, 64));
    const std::size_t take = std::min(chunk, wire.size() - pos);
    ASSERT_TRUE(decoder
                    .feed(std::span(wire.data() + pos, take),
                          [&](rpc::RpcMessage m) {
                            received.push_back(std::move(m));
                          })
                    .is_ok());
    pos += take;
  }
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(received[i].request_id, sent[i].request_id);
    EXPECT_EQ(received[i].method, sent[i].method);
    EXPECT_EQ(received[i].payload, sent[i].payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------------------------ filters

// Property: De Morgan — !(A&B) matches exactly when (!A)|(!B) matches.
TEST(FilterProperty, DeMorganEquivalence) {
  Rng rng(5);
  auto lhs = catalog::Filter::parse("(!(&(a=1)(b=2)))");
  auto rhs = catalog::Filter::parse("(|(!(a=1))(!(b=2)))");
  ASSERT_TRUE(lhs.is_ok());
  ASSERT_TRUE(rhs.is_ok());
  for (int i = 0; i < 200; ++i) {
    std::map<std::string, std::set<std::string>> attrs;
    if (rng.chance(0.7)) attrs["a"].insert(rng.chance(0.5) ? "1" : "9");
    if (rng.chance(0.7)) attrs["b"].insert(rng.chance(0.5) ? "2" : "9");
    ASSERT_EQ(lhs->matches(attrs), rhs->matches(attrs));
  }
}

// Property: parse(to_string(f)) accepts/rejects the same inputs as f.
TEST(FilterProperty, PrintParseStable) {
  const char* sources[] = {
      "(a=*)", "(&(x=1)(y>=2)(z<=3))", "(|(a=foo*)(!(b=bar)))",
      "(&(|(a=1)(b=2))(!(c=3)))"};
  Rng rng(6);
  for (const char* source : sources) {
    auto f1 = catalog::Filter::parse(source);
    ASSERT_TRUE(f1.is_ok());
    auto f2 = catalog::Filter::parse(f1->to_string());
    ASSERT_TRUE(f2.is_ok()) << f1->to_string();
    for (int i = 0; i < 100; ++i) {
      std::map<std::string, std::set<std::string>> attrs;
      for (const char* key : {"a", "b", "c", "x", "y", "z"}) {
        if (rng.chance(0.5)) {
          attrs[key].insert(std::to_string(rng.uniform_int(0, 4)));
        }
      }
      ASSERT_EQ(f1->matches(attrs), f2->matches(attrs));
    }
  }
}

// ---------------------------------------------------------------- disk pool

// Property: under random operations the pool never exceeds capacity and
// never evicts pinned files.
class DiskPoolProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiskPoolProperty, CapacityAndPinningInvariants) {
  Rng rng(GetParam());
  sim::Simulator simulator;
  storage::Disk disk(simulator, storage::DiskConfig{});
  constexpr Bytes kCapacity = 10000;
  storage::DiskPool pool(kCapacity, disk);
  std::set<std::string> pinned;
  for (int step = 0; step < 500; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 3));
    const std::string name = "/f" + std::to_string(rng.uniform_int(0, 19));
    switch (op) {
      case 0: {
        const Bytes size = rng.uniform_int(1, 4000);
        auto added = pool.add_file(name, size, rng.next(), step);
        if (added.is_ok() && pinned.contains(name)) pinned.erase(name);
        break;
      }
      case 1:
        if (pool.pin(name).is_ok()) pinned.insert(name);
        break;
      case 2:
        if (pool.unpin(name).is_ok()) pinned.erase(name);
        break;
      case 3:
        if (pool.remove(name).is_ok()) pinned.erase(name);
        break;
    }
    ASSERT_LE(pool.used_bytes() + pool.reserved_bytes(), kCapacity);
    for (const std::string& p : pinned) {
      ASSERT_TRUE(pool.contains(p)) << "pinned file evicted: " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskPoolProperty,
                         ::testing::Values(101, 202, 303, 404));

// --------------------------------------------------------------------- TCP

// Property: N flows sharing a window-limited bottleneck each deliver their
// bytes exactly once and throughput is roughly fair.
class TcpFairnessProperty : public ::testing::TestWithParam<int> {};

TEST_P(TcpFairnessProperty, WindowLimitedFlowsShareFairly) {
  const int flows = GetParam();
  sim::Simulator simulator;
  net::Network network(simulator);
  auto path = net::make_wan_path(network, "a", "b");
  net::TcpStack stack_a(simulator, *path.host_a);
  net::TcpStack stack_b(simulator, *path.host_b);
  net::TcpConfig config;
  config.send_buffer = 64 * kKiB;
  config.recv_buffer = 64 * kKiB;
  std::vector<Bytes> delivered(static_cast<std::size_t>(flows), 0);
  std::vector<net::TcpConnection::Ptr> keep;
  int next = 0;
  (void)stack_b.listen(5000, config, [&](net::TcpConnection::Ptr c) {
    const int index = next++;
    c->on_synthetic_data = [&delivered, index](Bytes n) {
      delivered[static_cast<std::size_t>(index)] += n;
    };
    keep.push_back(std::move(c));
  });
  const Bytes per_flow = 3 * kMiB;
  std::vector<SimTime> finish(static_cast<std::size_t>(flows), 0);
  for (int i = 0; i < flows; ++i) {
    auto client = stack_a.connect(path.host_b->id(), 5000, config);
    // Raw pointer: capturing the shared_ptr in the connection's own
    // handler would be a reference cycle (`keep` owns the lifetime).
    auto* client_raw = client.get();
    client->on_established = [client_raw, per_flow](const Status&) {
      client_raw->send_synthetic(per_flow);
    };
    client->on_send_drained = [&finish, i, &simulator] {
      if (finish[static_cast<std::size_t>(i)] == 0) {
        finish[static_cast<std::size_t>(i)] = simulator.now();
      }
    };
    keep.push_back(std::move(client));
  }
  simulator.run_until(600 * kSecond);
  SimTime min_finish = finish[0], max_finish = finish[0];
  for (int i = 0; i < flows; ++i) {
    ASSERT_EQ(delivered[static_cast<std::size_t>(i)], per_flow)
        << "flow " << i;
    ASSERT_GT(finish[static_cast<std::size_t>(i)], 0);
    min_finish = std::min(min_finish, finish[static_cast<std::size_t>(i)]);
    max_finish = std::max(max_finish, finish[static_cast<std::size_t>(i)]);
  }
  // Window-limited flows have identical rates; finishing times must agree
  // within 20%.
  EXPECT_LT(static_cast<double>(max_finish),
            static_cast<double>(min_finish) * 1.2);
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, TcpFairnessProperty,
                         ::testing::Values(2, 4, 8));

// Property: data delivered through a lossy bottleneck is complete and
// in-order regardless of retransmission path taken.
class TcpLossProperty : public ::testing::TestWithParam<Bytes> {};

TEST_P(TcpLossProperty, LossyDeliveryStillExactlyOnce) {
  sim::Simulator simulator;
  net::Network network(simulator);
  net::WanConfig wan;
  wan.wan_queue = GetParam();  // tiny queues force heavy loss
  auto path = net::make_wan_path(network, "a", "b", wan);
  net::TcpStack stack_a(simulator, *path.host_a);
  net::TcpStack stack_b(simulator, *path.host_b);
  net::TcpConfig config;
  config.send_buffer = 512 * kKiB;
  config.recv_buffer = 512 * kKiB;
  Bytes delivered = 0;
  net::TcpConnection::Ptr server;
  (void)stack_b.listen(5000, config, [&](net::TcpConnection::Ptr c) {
    server = c;
    c->on_synthetic_data = [&](Bytes n) { delivered += n; };
  });
  auto client = stack_a.connect(path.host_b->id(), 5000, config);
  const Bytes total = 4 * kMiB;
  client->on_established = [&](const Status&) {
    client->send_synthetic(total);
  };
  simulator.run_until(1200 * kSecond);
  EXPECT_EQ(delivered, total);
  EXPECT_EQ(client->stats().bytes_acked, total);
  if (GetParam() <= 128 * kKiB) {
    EXPECT_GT(client->stats().retransmits + client->stats().timeouts, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(QueueSizes, TcpLossProperty,
                         ::testing::Values(32 * kKiB, 64 * kKiB, 128 * kKiB,
                                           704 * kKiB));

// ------------------------------------------------------------------- CRC

// Property: splitting a synthetic stream at any boundary leaves the CRC
// unchanged, and any perturbation of (seed, length) changes it.
class CrcProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrcProperty, SplitInvarianceAndSensitivity) {
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    const std::uint64_t seed = rng.next();
    const Bytes length = rng.uniform_int(1, 1 << 20);
    const std::uint32_t whole = crc32_synthetic(seed, 0, length);

    const Bytes split = rng.uniform_int(0, length);
    Crc32 two_parts;
    two_parts.update_synthetic(seed, 0, split);
    two_parts.update_synthetic(seed, split, length - split);
    // NOTE: update_synthetic folds in extent lengths, so a split stream is
    // NOT bytewise-identical to the whole stream — but it must be
    // *deterministic*: the same split always gives the same value.
    Crc32 again;
    again.update_synthetic(seed, 0, split);
    again.update_synthetic(seed, split, length - split);
    ASSERT_EQ(two_parts.value(), again.value());

    ASSERT_NE(whole, crc32_synthetic(seed ^ 1, 0, length));
    ASSERT_NE(whole, crc32_synthetic(seed, 0, length + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrcProperty, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace gdmp
