// Tests for the fluid-flow transfer model (src/flow): the weighted max-min
// solver, the engine's incremental renegotiation, teardown discipline, and
// fluid GridFTP end to end — including the Figure 5/6 operating points
// where the fluid model must track the packet model within tolerance.
#include <gtest/gtest.h>

#include <memory>

#include "bench_util.h"
#include "common/crc32.h"
#include "flow/fair_share.h"
#include "flow/flow_engine.h"
#include "gridftp/client.h"
#include "gridftp/server.h"
#include "net/topology.h"
#include "obs/channel.h"
#include "storage/disk.h"
#include "storage/disk_pool.h"

namespace gdmp::flow {
namespace {

constexpr SimTime kYear = 365LL * 24 * 3600 * kSecond;
constexpr double kEff = 1460.0 / 1500.0;

// ---------------------------------------------------------------- WaterFill

TEST(WaterFill, EqualSharesOnOneLink) {
  std::vector<ShareFlow> flows(4);
  std::vector<ShareLink> links(1);
  links[0].capacity = 100e6;
  std::vector<std::int32_t> membership;
  for (auto& flow : flows) {
    flow.link_begin = static_cast<std::int32_t>(membership.size());
    flow.link_count = 1;
    membership.push_back(0);
  }
  WaterFill solver;
  solver.solve(flows, links, membership, 0.0);
  for (const auto& flow : flows) {
    EXPECT_NEAR(flow.rate, 25e6, 1.0);
    EXPECT_EQ(flow.bottleneck, 0);
  }
}

TEST(WaterFill, WeightsSplitProportionally) {
  std::vector<ShareFlow> flows(2);
  flows[0].weight = 1.0;
  flows[1].weight = 3.0;
  std::vector<ShareLink> links(1);
  links[0].capacity = 100e6;
  std::vector<std::int32_t> membership = {0, 0};
  flows[0].link_begin = 0;
  flows[0].link_count = 1;
  flows[1].link_begin = 1;
  flows[1].link_count = 1;
  WaterFill solver;
  solver.solve(flows, links, membership, 0.0);
  EXPECT_NEAR(flows[0].rate, 25e6, 1.0);
  EXPECT_NEAR(flows[1].rate, 75e6, 1.0);
}

TEST(WaterFill, CapBoundFlowFreesBandwidthForOthers) {
  std::vector<ShareFlow> flows(2);
  flows[0].cap = 10e6;
  std::vector<ShareLink> links(1);
  links[0].capacity = 100e6;
  std::vector<std::int32_t> membership = {0, 0};
  flows[0].link_begin = 0;
  flows[0].link_count = 1;
  flows[1].link_begin = 1;
  flows[1].link_count = 1;
  WaterFill solver;
  solver.solve(flows, links, membership, 0.0);
  EXPECT_NEAR(flows[0].rate, 10e6, 1.0);
  EXPECT_EQ(flows[0].bottleneck, -1);  // its own cap, not a link
  EXPECT_NEAR(flows[1].rate, 90e6, 1.0);
  EXPECT_EQ(flows[1].bottleneck, 0);
}

TEST(WaterFill, MultiLinkBottleneckIsTheNarrowLink) {
  // Flow 0 crosses the 10 Mbit/s link then the 100 Mbit/s link; flow 1
  // crosses only the wide link. Classic max-min: 10 / 90.
  std::vector<ShareFlow> flows(2);
  std::vector<ShareLink> links(2);
  links[0].capacity = 10e6;
  links[1].capacity = 100e6;
  std::vector<std::int32_t> membership = {0, 1, 1};
  flows[0].link_begin = 0;
  flows[0].link_count = 2;
  flows[1].link_begin = 2;
  flows[1].link_count = 1;
  WaterFill solver;
  solver.solve(flows, links, membership, 0.0);
  EXPECT_NEAR(flows[0].rate, 10e6, 1.0);
  EXPECT_EQ(flows[0].bottleneck, 0);
  EXPECT_NEAR(flows[1].rate, 90e6, 1.0);
  EXPECT_EQ(flows[1].bottleneck, 1);
}

TEST(WaterFill, MinRateFloorsOverloadedLinks) {
  std::vector<ShareFlow> flows(1);
  std::vector<ShareLink> links(1);
  links[0].capacity = 0.0;  // fully pre-consumed by fixed load
  std::vector<std::int32_t> membership = {0};
  flows[0].link_begin = 0;
  flows[0].link_count = 1;
  WaterFill solver;
  solver.solve(flows, links, membership, 1e3);
  EXPECT_EQ(flows[0].rate, 1e3);
}

// --------------------------------------------------------------- FlowEngine

/// Two hosts joined by one duplex link.
struct PairNet {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::Node* a = nullptr;
  net::Node* b = nullptr;
  net::Link* ab = nullptr;

  explicit PairNet(BitsPerSec bandwidth = 100 * kMbps,
                   SimDuration propagation = 5 * kMillisecond) {
    a = &network.add_node("a");
    b = &network.add_node("b");
    net::LinkConfig config;
    config.bandwidth = bandwidth;
    config.propagation = propagation;
    network.connect(*a, *b, config);
    network.compute_routes();
    ab = network.link_between(*a, *b);
  }
};

TEST(FlowEngine, SingleFlowDrainsAtPayloadRate) {
  PairNet net;
  FluidConfig config;
  config.model_slow_start = false;
  FlowEngine engine(net.simulator, net.network, config);
  const Bytes bytes = 10 * kMiB;
  bool done = false;
  FlowDone result;
  FlowSpec spec;
  spec.src = net.a->id();
  spec.dst = net.b->id();
  spec.bytes = bytes;
  const FlowId id = engine.start(spec, [&](const FlowDone& d) {
    done = true;
    result = d;
  });
  ASSERT_TRUE(id.valid());
  net.simulator.run_until(60 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.transferred, bytes);
  const double expected_sec = bytes * 8.0 / (100e6 * kEff);
  EXPECT_NEAR(to_seconds(result.finished - result.started), expected_sec,
              expected_sec * 0.01);
  EXPECT_EQ(engine.active_flows(), 0u);
  EXPECT_EQ(engine.stats().flows_completed, 1);
}

TEST(FlowEngine, SecondFlowHalvesTheFirstMidFlight) {
  PairNet net;
  FluidConfig config;
  config.model_slow_start = false;
  FlowEngine engine(net.simulator, net.network, config);
  FlowSpec spec;
  spec.src = net.a->id();
  spec.dst = net.b->id();
  spec.bytes = 1 * kGiB;
  const FlowId first = engine.start(spec, [](const FlowDone&) {});
  net.simulator.run_until(1 * kSecond);
  EXPECT_NEAR(engine.rate(first), 100e6 * kEff, 1e3);

  const FlowId second = engine.start(spec, [](const FlowDone&) {});
  net.simulator.run_until(2 * kSecond);
  EXPECT_NEAR(engine.rate(first), 50e6 * kEff, 1e3);
  EXPECT_NEAR(engine.rate(second), 50e6 * kEff, 1e3);
  EXPECT_NEAR(engine.link_utilization(net.ab), 1.0, 1e-6);
}

TEST(FlowEngine, WindowCapReproducesUntunedCeiling) {
  PairNet net(100 * kMbps, 62 * kMillisecond + 500 * kMicrosecond);
  FluidConfig config;
  config.model_slow_start = false;
  FlowEngine engine(net.simulator, net.network, config);
  FlowSpec spec;
  spec.src = net.a->id();
  spec.dst = net.b->id();
  spec.bytes = 1 * kGiB;
  spec.window = 64 * kKiB;  // the Figure 5 untuned buffer
  const FlowId id = engine.start(spec, [](const FlowDone&) {});
  net.simulator.run_until(1 * kSecond);
  const double rtt_sec = 0.125;
  EXPECT_NEAR(engine.rate(id), 64.0 * kKiB * 8 / rtt_sec,
              engine.rate(id) * 0.01);
}

TEST(FlowEngine, PinnedFlowTakesFixedShare) {
  PairNet net;
  FluidConfig config;
  config.model_slow_start = false;
  FlowEngine engine(net.simulator, net.network, config);
  FlowSpec cross;
  cross.src = net.a->id();
  cross.dst = net.b->id();
  cross.bytes = kUnboundedBytes;
  cross.pinned_rate = 60 * kMbps;
  const FlowId pinned = engine.start(cross, [](const FlowDone&) {});
  FlowSpec spec;
  spec.src = net.a->id();
  spec.dst = net.b->id();
  spec.bytes = 1 * kGiB;
  const FlowId fair = engine.start(spec, [](const FlowDone&) {});
  net.simulator.run_until(1 * kSecond);
  EXPECT_NEAR(engine.rate(pinned), 60e6 * kEff, 1e3);
  EXPECT_NEAR(engine.rate(fair), 40e6 * kEff, 1e3);
  EXPECT_TRUE(engine.active(pinned));  // unbounded: never completes
}

TEST(FlowEngine, CancelFiresNotOkWithPartialBytes) {
  PairNet net;
  FluidConfig config;
  config.model_slow_start = false;
  FlowEngine engine(net.simulator, net.network, config);
  FlowSpec spec;
  spec.src = net.a->id();
  spec.dst = net.b->id();
  spec.bytes = 100 * kMiB;
  bool done = false;
  FlowDone result;
  const FlowId id = engine.start(spec, [&](const FlowDone& d) {
    done = true;
    result = d;
  });
  net.simulator.run_until(1 * kSecond);
  const Bytes seen = engine.transferred(id);
  EXPECT_GT(seen, 0);
  EXPECT_LT(seen, 100 * kMiB);
  ASSERT_TRUE(engine.cancel(id));
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok);
  EXPECT_NEAR(static_cast<double>(result.transferred),
              static_cast<double>(seen), 2.0);
  EXPECT_FALSE(engine.cancel(id));  // stale id: no-op
  EXPECT_EQ(engine.active_flows(), 0u);
  EXPECT_EQ(engine.stats().flows_cancelled, 1);
}

TEST(FlowEngine, ChurnRenegotiatesOnlyTouchedLinks) {
  // Two disjoint host pairs; churn on one pair must not recompute the
  // other pair's link or flows.
  sim::Simulator simulator;
  net::Network network(simulator);
  net::Node& a = network.add_node("a");
  net::Node& b = network.add_node("b");
  net::Node& c = network.add_node("c");
  net::Node& d = network.add_node("d");
  net::LinkConfig config;
  config.bandwidth = 100 * kMbps;
  config.propagation = 5 * kMillisecond;
  network.connect(a, b, config);
  network.connect(c, d, config);
  network.compute_routes();

  FlowEngine engine(simulator, network);
  FlowSpec ab;
  ab.src = a.id();
  ab.dst = b.id();
  ab.bytes = 10 * kGiB;
  FlowSpec cd = ab;
  cd.src = c.id();
  cd.dst = d.id();
  (void)engine.start(ab, [](const FlowDone&) {});
  (void)engine.start(cd, [](const FlowDone&) {});
  simulator.run_until(1 * kSecond);

  const std::int64_t links_before = engine.stats().links_recomputed;
  const std::int64_t flows_before = engine.stats().flows_recomputed;
  (void)engine.start(ab, [](const FlowDone&) {});
  simulator.run_until(2 * kSecond);
  // Exactly the a→b link; its two resident flows — the c→d pair untouched.
  EXPECT_EQ(engine.stats().links_recomputed - links_before, 1);
  EXPECT_EQ(engine.stats().flows_recomputed - flows_before, 2);
}

TEST(FlowEngine, LinkCapacityChangeRenegotiatesMidFlight) {
  PairNet net;
  FluidConfig config;
  config.model_slow_start = false;
  FlowEngine engine(net.simulator, net.network, config);
  FlowSpec spec;
  spec.src = net.a->id();
  spec.dst = net.b->id();
  spec.bytes = 1 * kGiB;
  bool done = false;
  const FlowId id = engine.start(spec, [&](const FlowDone& d) {
    done = d.ok;
  });
  net.simulator.run_until(1 * kSecond);
  EXPECT_NEAR(engine.rate(id), 100e6 * kEff, 1e3);

  net.ab->set_bandwidth(20 * kMbps);
  engine.on_link_changed(net.ab);
  net.simulator.run_until(2 * kSecond);
  EXPECT_NEAR(engine.rate(id), 20e6 * kEff, 1e3);

  net.simulator.run_until(30 * 60 * kSecond);
  EXPECT_TRUE(done);  // the completion event moved with the rate
}

TEST(FlowEngine, UnroutedFlowReturnsInvalidId) {
  sim::Simulator simulator;
  net::Network network(simulator);
  net::Node& a = network.add_node("a");
  net::Node& b = network.add_node("b");
  network.compute_routes();  // no link between them
  FlowEngine engine(simulator, network);
  FlowSpec spec;
  spec.src = a.id();
  spec.dst = b.id();
  spec.bytes = kMiB;
  const FlowId id = engine.start(spec, [](const FlowDone&) {});
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(engine.active_flows(), 0u);
}

TEST(FlowEngine, TeardownMidFlightDropsWorkWithoutCallbacks) {
  PairNet net;
  auto engine = std::make_unique<FlowEngine>(net.simulator, net.network);
  FlowSpec spec;
  spec.src = net.a->id();
  spec.dst = net.b->id();
  spec.bytes = 100 * kMiB;
  bool fired = false;
  (void)engine->start(spec, [&](const FlowDone&) { fired = true; });
  (void)engine->start(spec, [&](const FlowDone&) { fired = true; });
  net.simulator.run_until(1 * kSecond);
  engine.reset();  // pending completion + renegotiation events outlive it
  net.simulator.run_until(60 * kSecond);
  EXPECT_FALSE(fired);  // teardown discipline: in-flight work is dropped
}

// ------------------------------------------------------------ fluid GridFTP

struct FluidFtpFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::WanPath path;
  std::unique_ptr<net::TcpStack> stack_a;
  std::unique_ptr<net::TcpStack> stack_b;
  std::unique_ptr<FlowEngine> engine;
  security::CertificateAuthority ca{"TestCA"};
  storage::DiskConfig disk_config{};
  std::unique_ptr<storage::Disk> disk_a, disk_b;
  std::unique_ptr<storage::DiskPool> pool_a, pool_b;
  std::unique_ptr<gridftp::FtpServer> server;
  std::unique_ptr<gridftp::FtpClient> client;

  explicit FluidFtpFixture(gridftp::FtpServerConfig server_config = {}) {
    path = net::make_wan_path(network, "src", "dst");
    stack_a = std::make_unique<net::TcpStack>(simulator, *path.host_a);
    stack_b = std::make_unique<net::TcpStack>(simulator, *path.host_b);
    engine = std::make_unique<FlowEngine>(simulator, network);
    disk_a = std::make_unique<storage::Disk>(simulator, disk_config);
    disk_b = std::make_unique<storage::Disk>(simulator, disk_config);
    pool_a = std::make_unique<storage::DiskPool>(100 * kGiB, *disk_a);
    pool_b = std::make_unique<storage::DiskPool>(100 * kGiB, *disk_b);
    server_config.transfer_model = TransferModel::kFluid;
    server_config.flow_engine = engine.get();
    server = std::make_unique<gridftp::FtpServer>(
        *stack_a, *pool_a, ca, ca.issue("/CN=src", kYear), server_config);
    client = std::make_unique<gridftp::FtpClient>(
        *stack_b, ca, ca.issue("/CN=dst", kYear));
    EXPECT_TRUE(server->start().is_ok());
  }

  gridftp::TransferOptions fluid_options(int streams = 1) {
    gridftp::TransferOptions options;
    options.parallel_streams = streams;
    options.transfer_model = TransferModel::kFluid;
    options.flow_engine = engine.get();
    return options;
  }
};

TEST(FluidFtp, GetDeliversContentAndIdentity) {
  FluidFtpFixture f;
  (void)f.pool_a->add_file("/pool/f", 2 * kMiB, 0x1234, 0);
  auto options = f.fluid_options(2);
  bool done = false;
  f.client->get(f.path.host_a->id(), gridftp::kControlPort, "/pool/f",
                "/pool/f", f.pool_b.get(), options,
                [&](Result<gridftp::TransferResult> result) {
                  done = true;
                  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
                  EXPECT_EQ(result->bytes, 2 * kMiB);
                  EXPECT_EQ(result->content_seed, 0x1234u);
                  EXPECT_EQ(result->crc,
                            crc32_synthetic(0x1234, 0, 2 * kMiB));
                  EXPECT_EQ(result->streams, 2);
                });
  f.simulator.run_until(300 * kSecond);
  ASSERT_TRUE(done);
  auto local = f.pool_b->peek("/pool/f");
  ASSERT_TRUE(local.is_ok());
  EXPECT_EQ(local->size, 2 * kMiB);
  EXPECT_EQ(local->content_seed, 0x1234u);
  EXPECT_EQ(f.engine->stats().flows_completed, 2);  // one per stripe
  EXPECT_EQ(f.engine->active_flows(), 0u);
}

TEST(FluidFtp, PartialGetMovesOnlyRange) {
  FluidFtpFixture f;
  (void)f.pool_a->add_file("/pool/f", 10 * kMiB, 7, 0);
  auto options = f.fluid_options(1);
  options.range = gridftp::ByteRange{1 * kMiB, 2 * kMiB};
  bool done = false;
  f.client->get(f.path.host_a->id(), gridftp::kControlPort, "/pool/f",
                "/pool/part", f.pool_b.get(), options,
                [&](Result<gridftp::TransferResult> result) {
                  done = true;
                  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
                  EXPECT_EQ(result->bytes, 2 * kMiB);
                  EXPECT_EQ(result->crc,
                            crc32_synthetic(7, 1 * kMiB, 2 * kMiB));
                });
  f.simulator.run_until(300 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(f.pool_b->peek("/pool/part")->size, 2 * kMiB);
}

TEST(FluidFtp, PutStoresFileRemotely) {
  FluidFtpFixture f;
  (void)f.pool_b->add_file("/local/f", 3 * kMiB, 0x77, 0);
  auto options = f.fluid_options(3);
  bool done = false;
  f.client->put(f.path.host_a->id(), gridftp::kControlPort, *f.pool_b,
                "/local/f", "/pool/stored", options,
                [&](Result<gridftp::TransferResult> result) {
                  done = true;
                  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
                  EXPECT_EQ(result->bytes, 3 * kMiB);
                });
  f.simulator.run_until(300 * kSecond);
  ASSERT_TRUE(done);
  auto stored = f.pool_a->peek("/pool/stored");
  ASSERT_TRUE(stored.is_ok());
  EXPECT_EQ(stored->size, 3 * kMiB);
  EXPECT_EQ(stored->content_seed, 0x77u);
}

TEST(FluidFtp, CorruptionDetectedAndRepairedByRestart) {
  gridftp::FtpServerConfig config;
  config.corrupt_probability = 0.3;
  config.fault_seed = 11;
  FluidFtpFixture f(config);
  (void)f.pool_a->add_file("/pool/f", 4 * kMiB, 0x5151, 0);
  auto options = f.fluid_options(4);
  options.expected_crc = crc32_synthetic(0x5151, 0, 4 * kMiB);
  options.max_attempts = 10;
  bool done = false;
  f.client->get(f.path.host_a->id(), gridftp::kControlPort, "/pool/f",
                "/pool/f", f.pool_b.get(), options,
                [&](Result<gridftp::TransferResult> result) {
                  done = true;
                  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
                  EXPECT_GT(result->attempts, 1);
                  EXPECT_EQ(result->content_seed, 0x5151u);
                });
  f.simulator.run_until(600 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_GT(f.server->stats().blocks_corrupted, 0);
  EXPECT_EQ(f.engine->active_flows(), 0u);
}

TEST(FluidFtp, PersistentCorruptionExhaustsAttempts) {
  gridftp::FtpServerConfig config;
  config.corrupt_probability = 1.0;  // every stripe poisoned
  FluidFtpFixture f(config);
  (void)f.pool_a->add_file("/pool/f", 1 * kMiB, 3, 0);
  auto options = f.fluid_options(1);
  options.expected_crc = crc32_synthetic(3, 0, 1 * kMiB);
  options.max_attempts = 2;
  Status status = Status::ok();
  f.client->get(f.path.host_a->id(), gridftp::kControlPort, "/pool/f",
                "/pool/f", f.pool_b.get(), options,
                [&](Result<gridftp::TransferResult> result) {
                  status = result.status();
                });
  f.simulator.run_until(600 * kSecond);
  EXPECT_EQ(status.code(), ErrorCode::kCorrupted);
  EXPECT_EQ(f.engine->active_flows(), 0u);
}

TEST(FluidFtp, EmitsPerfAndRestartMarkers) {
  gridftp::FtpServerConfig config;
  config.corrupt_probability = 0.4;
  config.fault_seed = 5;
  FluidFtpFixture f(config);
  (void)f.pool_a->add_file("/pool/f", 8 * kMiB, 0xabc, 0);

  obs::TransferChannel channel;
  int perf_markers = 0;
  int restarts = 0;
  bool summary_ok = false;
  std::uint32_t stripe_count = 0;
  obs::TransferChannel::Observer observer;
  observer.on_perf = [&](const obs::PerfMarker& marker) {
    ++perf_markers;
    stripe_count = std::max(stripe_count, marker.stripe_count);
  };
  observer.on_restart = [&](const obs::RestartMarker&) { ++restarts; };
  observer.on_complete = [&](const obs::TransferSummary& summary) {
    summary_ok = summary.ok;
  };
  channel.subscribe(std::move(observer));

  auto options = f.fluid_options(4);
  options.channel = &channel;
  options.expected_crc = crc32_synthetic(0xabc, 0, 8 * kMiB);
  options.max_attempts = 10;
  bool done = false;
  f.client->get(f.path.host_a->id(), gridftp::kControlPort, "/pool/f",
                "/pool/f", f.pool_b.get(), options,
                [&](Result<gridftp::TransferResult> result) {
                  done = true;
                  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
                });
  f.simulator.run_until(600 * kSecond);
  ASSERT_TRUE(done);
  // The same marker stream the packet path produces: per-stripe perf
  // markers from the monitor, restart markers from the repair attempts,
  // one terminal summary.
  EXPECT_GE(perf_markers, 4);
  EXPECT_EQ(stripe_count, 4u);
  EXPECT_GT(restarts, 0);
  EXPECT_TRUE(summary_ok);
}

TEST(FluidFtp, FallsBackToPacketWithoutEngine) {
  FluidFtpFixture f;
  (void)f.pool_a->add_file("/pool/f", 1 * kMiB, 9, 0);
  auto options = f.fluid_options(1);
  options.flow_engine = nullptr;  // fluid requested but no engine: packet
  bool done = false;
  f.client->get(f.path.host_a->id(), gridftp::kControlPort, "/pool/f",
                "/pool/f", f.pool_b.get(), options,
                [&](Result<gridftp::TransferResult> result) {
                  done = true;
                  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
                });
  f.simulator.run_until(300 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(f.engine->stats().flows_started, 0);
}

// ------------------------------------------------- Figure 5/6 equivalence

TEST(FluidEquivalence, Fig5UntunedOperatingPoints) {
  // Figure 5 operating points: 25 MB over the 45 Mbit/s, 125 ms shared
  // path with 64 KB buffers. The fluid model must land within 10% of the
  // packet model's rate.
  for (const int streams : {1, 5}) {
    bench::WanBenchConfig config;
    config.seed = static_cast<std::uint64_t>(25 * kMiB) ^ (streams * 977);
    const auto packet = bench::run_wan_get(config, 25 * kMiB, streams,
                                           64 * kKiB, TransferModel::kPacket);
    const auto fluid = bench::run_wan_get(config, 25 * kMiB, streams,
                                          64 * kKiB, TransferModel::kFluid);
    ASSERT_TRUE(packet.ok);
    ASSERT_TRUE(fluid.ok);
    EXPECT_NEAR(fluid.mbps, packet.mbps, 0.10 * packet.mbps)
        << "streams=" << streams;
    EXPECT_LT(fluid.events, packet.events / 10) << "streams=" << streams;
  }
}

TEST(FluidEquivalence, Fig6TunedOperatingPoints) {
  // Figure 6: the same path with 1 MB tuned buffers. At one stream both
  // models sit in the clean congestion-limited regime and must agree
  // within 10%. At three or more streams the packet model's identical,
  // simultaneously-started streams synchronize their losses on the deep
  // drop-tail buffer and dip well below the paper's measured plateau
  // (~23 Mbit/s with production cross traffic); the fluid model holds the
  // residual fair share, so there we pin it against the paper's number
  // instead (see DESIGN.md §5f and the DISABLED_ sweep below).
  bench::WanBenchConfig config;
  config.seed = static_cast<std::uint64_t>(25 * kMiB) ^ 1409;
  const auto packet = bench::run_wan_get(config, 25 * kMiB, 1, 1 * kMiB,
                                         TransferModel::kPacket);
  const auto fluid = bench::run_wan_get(config, 25 * kMiB, 1, 1 * kMiB,
                                        TransferModel::kFluid);
  ASSERT_TRUE(packet.ok);
  ASSERT_TRUE(fluid.ok);
  EXPECT_NEAR(fluid.mbps, packet.mbps, 0.10 * packet.mbps);
  EXPECT_LT(fluid.events, packet.events / 10);

  const auto plateau = bench::run_wan_get(config, 25 * kMiB, 5, 1 * kMiB,
                                          TransferModel::kFluid);
  ASSERT_TRUE(plateau.ok);
  EXPECT_NEAR(plateau.mbps, 23.0, 2.3);  // the paper's tuned peak ±10%
}

// Calibration aid, not a regression gate: prints the tuned packet-vs-fluid
// sweep (with and without cross traffic) that motivated the operating-point
// choices above. Run with --gtest_also_run_disabled_tests.
TEST(FluidEquivalence, DISABLED_TunedSweepDiagnostic) {
  for (const BitsPerSec cross : {BitsPerSec(0), 18 * kMbps}) {
    for (const int streams : {1, 2, 3, 5, 8, 10}) {
      bench::WanBenchConfig config;
      config.cross_traffic = cross;
      config.seed = static_cast<std::uint64_t>(streams * 1409 + 7);
      const auto packet = bench::run_wan_get(
          config, 25 * kMiB, streams, 1 * kMiB, TransferModel::kPacket);
      const auto fluid = bench::run_wan_get(
          config, 25 * kMiB, streams, 1 * kMiB, TransferModel::kFluid);
      std::printf("cross=%2.0f n=%2d packet=%6.2f fluid=%6.2f ratio=%.3f\n",
                  cross / 1e6, streams, packet.mbps, fluid.mbps,
                  packet.mbps > 0 ? fluid.mbps / packet.mbps : 0.0);
    }
  }
}

}  // namespace
}  // namespace gdmp::flow
