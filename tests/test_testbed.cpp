// Tests for the testbed assembly layer and workload generators.
#include <gtest/gtest.h>

#include "testbed/grid.h"
#include "testbed/workload.h"

namespace gdmp::testbed {
namespace {

TEST(GridAssembly, TwoSiteConfigBuildsAndStarts) {
  Grid grid(two_site_config("cern", "anl"));
  ASSERT_TRUE(grid.start().is_ok());
  EXPECT_EQ(grid.site_count(), 2u);
  EXPECT_EQ(grid.site(0).name(), "cern");
  EXPECT_EQ(grid.site(1).name(), "anl");
  ASSERT_NE(grid.find_site("anl"), nullptr);
  EXPECT_EQ(grid.find_site("nosuch"), nullptr);
  ASSERT_NE(grid.uplink(0), nullptr);
  EXPECT_NE(grid.catalog_node(), net::kInvalidNode);
}

TEST(GridAssembly, EndToEndRttMatchesConfiguredDelays) {
  // Two legs of 31.25 ms plus LAN hops: a TCP handshake (SYN + SYN|ACK)
  // completes in one RTT ≈ 125 ms.
  Grid grid(two_site_config());
  ASSERT_TRUE(grid.start().is_ok());
  net::TcpConfig config;
  bool established = false;
  SimTime established_at = 0;
  (void)grid.site(1).stack().listen(
      6000, config, [](net::TcpConnection::Ptr) {});
  const SimTime start = grid.simulator().now();
  auto client = grid.site(0).stack().connect(grid.site(1).host().id(), 6000,
                                             config);
  client->on_established = [&](const Status& s) {
    established = s.is_ok();
    established_at = grid.simulator().now();
  };
  grid.run_until(grid.simulator().now() + 10 * kSecond);
  ASSERT_TRUE(established);
  const double rtt_ms = to_seconds(established_at - start) * 1e3;
  EXPECT_NEAR(rtt_ms, 125.0, 5.0);
}

TEST(GridAssembly, SitesWithoutFederationOrMss) {
  GridConfig config = two_site_config();
  config.sites[0].site.has_federation = false;
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  EXPECT_EQ(grid.site(0).federation(), nullptr);
  EXPECT_EQ(grid.site(0).persistency(), nullptr);
  EXPECT_EQ(grid.site(0).mss(), nullptr);
  EXPECT_NE(grid.site(1).federation(), nullptr);
}

TEST(GridAssembly, CrossTrafficOccupiesUplink) {
  GridConfig config = two_site_config("a", "b", 10 * kMbps);
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  grid.run_until(10 * kSecond);
  ASSERT_NE(grid.uplink(0), nullptr);
  // ~10 Mbit/s for 10 s ≈ 12.5 MB of wire bytes on the uplink.
  EXPECT_GT(grid.uplink(0)->stats().bytes_sent, 8 * kMiB);
}

TEST(Workload, ProduceRunCreatesClusteredFiles) {
  Grid grid(two_site_config());
  ASSERT_TRUE(grid.start().is_ok());
  ProductionConfig production;
  production.tier = objstore::Tier::kEsd;  // 500 objects/file
  production.event_lo = 100;
  production.event_hi = 1600;
  auto files = produce_run(grid.site(0), production);
  ASSERT_EQ(files.size(), 3u);  // 1500 events / 500 per file
  Bytes total = 0;
  for (const auto& file : files) {
    EXPECT_TRUE(grid.site(0).pool().contains(file.local_path));
    EXPECT_TRUE(grid.site(0).federation()->is_attached(file.local_path));
    EXPECT_EQ(file.file_type, "objectivity");
    EXPECT_EQ(file.extra.at("layout"), "range");
    total += grid.site(0).pool().peek(file.local_path)->size;
  }
  EXPECT_EQ(total, 1500LL * 100 * kKiB);
  // Every produced object is locally readable.
  EXPECT_TRUE(grid.site(0).persistency()->available(
      objstore::make_object_id(objstore::Tier::kEsd, 100)));
  EXPECT_TRUE(grid.site(0).persistency()->available(
      objstore::make_object_id(objstore::Tier::kEsd, 1599)));
  EXPECT_FALSE(grid.site(0).persistency()->available(
      objstore::make_object_id(objstore::Tier::kEsd, 1600)));
}

TEST(Workload, ProduceRunStopsWhenPoolFull) {
  GridConfig config = two_site_config();
  config.sites[0].site.pool_capacity = 30 * kMiB;  // fits ~1.5 AOD files
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  ProductionConfig production;
  production.tier = objstore::Tier::kAod;
  production.event_hi = 10'000;  // would need 5 files = ~98 MiB
  auto files = produce_run(grid.site(0), production);
  EXPECT_GE(files.size(), 1u);
  // The pool honours its capacity by evicting LRU files, so older
  // production files may already be gone — but never over-commits.
  EXPECT_LE(grid.site(0).pool().used_bytes(),
            grid.site(0).pool().capacity());
  std::size_t still_on_disk = 0;
  for (const auto& file : files) {
    if (grid.site(0).pool().contains(file.local_path)) ++still_on_disk;
  }
  EXPECT_LT(still_on_disk, files.size());
}

TEST(Workload, AllTiersShareEventRange) {
  Grid grid(two_site_config());
  ASSERT_TRUE(grid.start().is_ok());
  auto files = produce_all_tiers(grid.site(0), 0, 1000, "full");
  int tiers_seen[4] = {0, 0, 0, 0};
  for (const auto& file : files) {
    tiers_seen[std::stoi(file.extra.at("tier"))]++;
  }
  EXPECT_EQ(tiers_seen[0], 1);   // tag: 100k/file -> 1
  EXPECT_EQ(tiers_seen[1], 1);   // aod: 2000/file -> 1
  EXPECT_EQ(tiers_seen[2], 2);   // esd: 500/file -> 2
  EXPECT_EQ(tiers_seen[3], 10);  // raw: 100/file -> 10
}

TEST(Observatory, FluidHeartbeatStreamIsDeterministic) {
  // Two same-seed fluid-model runs with a 30 s heartbeat must produce the
  // identical rollup stream, byte for byte — the in-process counterpart of
  // tools/determinism_check's GDMP_ROLLUP_FILE comparison.
  auto run = [] {
    GridConfig config = two_site_config("cern", "anl");
    config.transfer_model = flow::TransferModel::kFluid;
    config.heartbeat_period = 30 * kSecond;
    config.event_count = 4000;
    config.sites[1].site.gdmp.auto_replicate_on_notify = true;
    Grid grid(config);
    EXPECT_TRUE(grid.start().is_ok());
    std::string stream;
    grid.heartbeat()->set_sink([&stream](const std::string& line) {
      stream += line;
      stream += '\n';
    });
    Site& cern = grid.site(0);
    Site& anl = grid.site(1);
    anl.gdmp().subscribe(cern.host().id(), 2000, [](Status) {});
    grid.run_until(grid.simulator().now() + 30 * kSecond);
    ProductionConfig production;
    production.tier = objstore::Tier::kAod;
    production.event_hi = 4000;
    auto files = produce_run(cern, production);
    cern.gdmp().publish(files, [](Status) {});
    grid.run_until(grid.simulator().now() + 3600 * kSecond);
    EXPECT_TRUE(anl.scheduler().idle());
    grid.heartbeat()->finish();
    return stream;
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"type\":\"campaign\""), std::string::npos);
  // The fluid uplink instruments made it into the stream: the payload
  // leaves through cern's uplink, so that is the bytes_moved counter that
  // shows deltas (anl's uplink only carries control traffic).
  EXPECT_NE(first.find("grid.uplink.anl.utilization"), std::string::npos);
  EXPECT_NE(first.find("grid.uplink.cern.bytes_moved"), std::string::npos);
}

TEST(Observatory, SaturatedUplinkFiresWatchdogOnce) {
  // Pinned cross traffic at ≈100% of the payload capacity of cern's 45
  // Mbit/s uplink holds its utilization above the 0.95 ceiling from tick
  // 1, so link_saturation fires exactly once, on the configured third
  // sustained tick — deterministically.
  GridConfig config = two_site_config("cern", "anl", 44 * kMbps);
  config.transfer_model = flow::TransferModel::kFluid;
  config.heartbeat_period = kSecond;
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  std::vector<std::string> lines;
  grid.heartbeat()->set_sink(
      [&lines](const std::string& line) { lines.push_back(line); });
  grid.run_until(10 * kSecond);
  grid.heartbeat()->finish();

  EXPECT_EQ(grid.heartbeat()->ticks(), 10u);
  EXPECT_EQ(grid.heartbeat()->alerts_total(), 1);
  std::size_t alert_records = 0, alert_seq = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("\"rule\":\"link_saturation\"") == std::string::npos) {
      continue;
    }
    ++alert_records;
    alert_seq = i + 1;  // rollup seq is 1-based in emission order
  }
  EXPECT_EQ(alert_records, 1u);
  EXPECT_EQ(alert_seq, 3u);  // watch_saturation_ticks = 3
  // The alert also lands in the reporter's own counters on later ticks.
  EXPECT_NE(lines.back().find("\"alerts_total\":1"), std::string::npos);
  EXPECT_NE(lines[3].find("\"obs.alert.link_saturation\""),
            std::string::npos);
}

TEST(SiteAssembly, StorageBackendSelection) {
  GridConfig config = two_site_config();
  config.sites[0].site.has_mss = true;
  config.sites[0].site.use_script_stager = false;
  config.sites[1].site.has_mss = true;
  config.sites[1].site.use_script_stager = true;
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  ASSERT_NE(grid.site(0).mss(), nullptr);
  ASSERT_NE(grid.site(1).mss(), nullptr);
}

}  // namespace
}  // namespace gdmp::testbed
