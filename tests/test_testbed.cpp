// Tests for the testbed assembly layer and workload generators.
#include <gtest/gtest.h>

#include "testbed/grid.h"
#include "testbed/workload.h"

namespace gdmp::testbed {
namespace {

TEST(GridAssembly, TwoSiteConfigBuildsAndStarts) {
  Grid grid(two_site_config("cern", "anl"));
  ASSERT_TRUE(grid.start().is_ok());
  EXPECT_EQ(grid.site_count(), 2u);
  EXPECT_EQ(grid.site(0).name(), "cern");
  EXPECT_EQ(grid.site(1).name(), "anl");
  ASSERT_NE(grid.find_site("anl"), nullptr);
  EXPECT_EQ(grid.find_site("nosuch"), nullptr);
  ASSERT_NE(grid.uplink(0), nullptr);
  EXPECT_NE(grid.catalog_node(), net::kInvalidNode);
}

TEST(GridAssembly, EndToEndRttMatchesConfiguredDelays) {
  // Two legs of 31.25 ms plus LAN hops: a TCP handshake (SYN + SYN|ACK)
  // completes in one RTT ≈ 125 ms.
  Grid grid(two_site_config());
  ASSERT_TRUE(grid.start().is_ok());
  net::TcpConfig config;
  bool established = false;
  SimTime established_at = 0;
  (void)grid.site(1).stack().listen(
      6000, config, [](net::TcpConnection::Ptr) {});
  const SimTime start = grid.simulator().now();
  auto client = grid.site(0).stack().connect(grid.site(1).host().id(), 6000,
                                             config);
  client->on_established = [&](const Status& s) {
    established = s.is_ok();
    established_at = grid.simulator().now();
  };
  grid.run_until(grid.simulator().now() + 10 * kSecond);
  ASSERT_TRUE(established);
  const double rtt_ms = to_seconds(established_at - start) * 1e3;
  EXPECT_NEAR(rtt_ms, 125.0, 5.0);
}

TEST(GridAssembly, SitesWithoutFederationOrMss) {
  GridConfig config = two_site_config();
  config.sites[0].site.has_federation = false;
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  EXPECT_EQ(grid.site(0).federation(), nullptr);
  EXPECT_EQ(grid.site(0).persistency(), nullptr);
  EXPECT_EQ(grid.site(0).mss(), nullptr);
  EXPECT_NE(grid.site(1).federation(), nullptr);
}

TEST(GridAssembly, CrossTrafficOccupiesUplink) {
  GridConfig config = two_site_config("a", "b", 10 * kMbps);
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  grid.run_until(10 * kSecond);
  ASSERT_NE(grid.uplink(0), nullptr);
  // ~10 Mbit/s for 10 s ≈ 12.5 MB of wire bytes on the uplink.
  EXPECT_GT(grid.uplink(0)->stats().bytes_sent, 8 * kMiB);
}

TEST(Workload, ProduceRunCreatesClusteredFiles) {
  Grid grid(two_site_config());
  ASSERT_TRUE(grid.start().is_ok());
  ProductionConfig production;
  production.tier = objstore::Tier::kEsd;  // 500 objects/file
  production.event_lo = 100;
  production.event_hi = 1600;
  auto files = produce_run(grid.site(0), production);
  ASSERT_EQ(files.size(), 3u);  // 1500 events / 500 per file
  Bytes total = 0;
  for (const auto& file : files) {
    EXPECT_TRUE(grid.site(0).pool().contains(file.local_path));
    EXPECT_TRUE(grid.site(0).federation()->is_attached(file.local_path));
    EXPECT_EQ(file.file_type, "objectivity");
    EXPECT_EQ(file.extra.at("layout"), "range");
    total += grid.site(0).pool().peek(file.local_path)->size;
  }
  EXPECT_EQ(total, 1500LL * 100 * kKiB);
  // Every produced object is locally readable.
  EXPECT_TRUE(grid.site(0).persistency()->available(
      objstore::make_object_id(objstore::Tier::kEsd, 100)));
  EXPECT_TRUE(grid.site(0).persistency()->available(
      objstore::make_object_id(objstore::Tier::kEsd, 1599)));
  EXPECT_FALSE(grid.site(0).persistency()->available(
      objstore::make_object_id(objstore::Tier::kEsd, 1600)));
}

TEST(Workload, ProduceRunStopsWhenPoolFull) {
  GridConfig config = two_site_config();
  config.sites[0].site.pool_capacity = 30 * kMiB;  // fits ~1.5 AOD files
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  ProductionConfig production;
  production.tier = objstore::Tier::kAod;
  production.event_hi = 10'000;  // would need 5 files = ~98 MiB
  auto files = produce_run(grid.site(0), production);
  EXPECT_GE(files.size(), 1u);
  // The pool honours its capacity by evicting LRU files, so older
  // production files may already be gone — but never over-commits.
  EXPECT_LE(grid.site(0).pool().used_bytes(),
            grid.site(0).pool().capacity());
  std::size_t still_on_disk = 0;
  for (const auto& file : files) {
    if (grid.site(0).pool().contains(file.local_path)) ++still_on_disk;
  }
  EXPECT_LT(still_on_disk, files.size());
}

TEST(Workload, AllTiersShareEventRange) {
  Grid grid(two_site_config());
  ASSERT_TRUE(grid.start().is_ok());
  auto files = produce_all_tiers(grid.site(0), 0, 1000, "full");
  int tiers_seen[4] = {0, 0, 0, 0};
  for (const auto& file : files) {
    tiers_seen[std::stoi(file.extra.at("tier"))]++;
  }
  EXPECT_EQ(tiers_seen[0], 1);   // tag: 100k/file -> 1
  EXPECT_EQ(tiers_seen[1], 1);   // aod: 2000/file -> 1
  EXPECT_EQ(tiers_seen[2], 2);   // esd: 500/file -> 2
  EXPECT_EQ(tiers_seen[3], 10);  // raw: 100/file -> 10
}

TEST(SiteAssembly, StorageBackendSelection) {
  GridConfig config = two_site_config();
  config.sites[0].site.has_mss = true;
  config.sites[0].site.use_script_stager = false;
  config.sites[1].site.has_mss = true;
  config.sites[1].site.use_script_stager = true;
  Grid grid(config);
  ASSERT_TRUE(grid.start().is_ok());
  ASSERT_NE(grid.site(0).mss(), nullptr);
  ASSERT_NE(grid.site(1).mss(), nullptr);
}

}  // namespace
}  // namespace gdmp::testbed
